/**
 * @file
 * Process-wide statistics registry: every simulator component registers
 * its stats::Group here at construction, and benches/tools dump all of
 * them uniformly as text or JSON.
 *
 * Components are shorter-lived than a bench process (fig benches build
 * and tear down several Systems), so a group that unregisters leaves a
 * value snapshot behind ("retired" groups) and still shows up in an
 * end-of-run dump. A refresh hook registered alongside the group runs
 * just before every dump (and before retiring), letting components
 * publish derived gauges such as bus utilization.
 */

#ifndef PIMMMU_TELEMETRY_STATS_REGISTRY_HH
#define PIMMMU_TELEMETRY_STATS_REGISTRY_HH

#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "common/stats.hh"

namespace pimmmu {
namespace telemetry {

class StatsRegistry
{
  public:
    /**
     * The calling thread's default instance. Thread-local so that
     * independent Systems can run concurrently (sim::SweepRunner):
     * each worker's components register into that worker's registry,
     * and the sweep driver moves the retired snapshots into the
     * launching thread's registry afterwards (takeRetired /
     * absorbRetired). Single-threaded programs see exactly the old
     * process-wide behavior.
     */
    static StatsRegistry &global();

    /**
     * Register a live group. @p refresh (optional) runs before every
     * dump and before the group is retired.
     * @return false (no-op) if this exact group is already registered.
     */
    bool add(stats::Group &group,
             std::function<void()> refresh = nullptr);

    /**
     * Unregister a live group, retaining a value snapshot for later
     * dumps. Unknown groups are ignored. Snapshots are capped (oldest
     * dropped first) so long-running processes stay bounded; drops are
     * reported in the dump, never silent.
     */
    void remove(stats::Group &group);

    bool isRegistered(const stats::Group &group) const;

    /** Move out all retired snapshots (cross-thread aggregation). */
    std::vector<stats::Group> takeRetired();

    /** Append retired snapshots taken from another registry. */
    void absorbRetired(std::vector<stats::Group> groups);

    std::size_t liveGroups() const { return live_.size(); }
    std::size_t retiredGroups() const { return retired_.size(); }
    std::vector<std::string> liveGroupNames() const;

    /** Drop all live registrations and retired snapshots. */
    void clear();

    /** Human-readable dump of every live + retired group. */
    void dumpText(std::ostream &os);

    /**
     * Machine-readable dump:
     * {"schema":"pim-mmu-stats-v1","groups":[{...},...]}.
     * Live groups first (refresh hooks applied), then retired
     * snapshots in retirement order.
     */
    void dumpJson(std::ostream &os);

    /** dumpJson to a file. @return false on I/O failure. */
    bool dumpJsonFile(const std::string &path);

    /**
     * One JSON object per live + retired group (refresh applied), in
     * registration order. Lets callers build an order-insensitive
     * digest: a restored System registers its groups in section order
     * rather than construction order, so a canonical fingerprint must
     * not depend on which came first.
     */
    std::vector<std::string> groupJsons();

  private:
    struct Entry
    {
        stats::Group *group;
        std::function<void()> refresh;
    };

    static constexpr std::size_t kMaxRetired = 4096;

    void refreshAll();

    std::vector<Entry> live_;
    std::vector<stats::Group> retired_;
    std::uint64_t retiredDropped_ = 0;
};

} // namespace telemetry
} // namespace pimmmu

#endif // PIMMMU_TELEMETRY_STATS_REGISTRY_HH

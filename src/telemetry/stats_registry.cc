#include "telemetry/stats_registry.hh"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <sstream>

namespace pimmmu {
namespace telemetry {

StatsRegistry &
StatsRegistry::global()
{
    static thread_local StatsRegistry instance;
    return instance;
}

bool
StatsRegistry::add(stats::Group &group, std::function<void()> refresh)
{
    if (isRegistered(group))
        return false;
    live_.push_back(Entry{&group, std::move(refresh)});
    return true;
}

bool
StatsRegistry::isRegistered(const stats::Group &group) const
{
    return std::any_of(live_.begin(), live_.end(),
                       [&](const Entry &e) { return e.group == &group; });
}

void
StatsRegistry::remove(stats::Group &group)
{
    auto it = std::find_if(
        live_.begin(), live_.end(),
        [&](const Entry &e) { return e.group == &group; });
    if (it == live_.end())
        return;
    if (it->refresh)
        it->refresh();
    if (retired_.size() >= kMaxRetired) {
        retired_.erase(retired_.begin());
        ++retiredDropped_;
    }
    retired_.push_back(*it->group);
    live_.erase(it);
}

std::vector<stats::Group>
StatsRegistry::takeRetired()
{
    std::vector<stats::Group> out = std::move(retired_);
    retired_.clear();
    return out;
}

void
StatsRegistry::absorbRetired(std::vector<stats::Group> groups)
{
    for (stats::Group &g : groups) {
        if (retired_.size() >= kMaxRetired) {
            retired_.erase(retired_.begin());
            ++retiredDropped_;
        }
        retired_.push_back(std::move(g));
    }
}

std::vector<std::string>
StatsRegistry::liveGroupNames() const
{
    std::vector<std::string> names;
    names.reserve(live_.size());
    for (const Entry &e : live_)
        names.push_back(e.group->name());
    return names;
}

void
StatsRegistry::clear()
{
    live_.clear();
    retired_.clear();
    retiredDropped_ = 0;
}

void
StatsRegistry::refreshAll()
{
    for (Entry &e : live_) {
        if (e.refresh)
            e.refresh();
    }
}

void
StatsRegistry::dumpText(std::ostream &os)
{
    refreshAll();
    for (const Entry &e : live_)
        e.group->dump(os);
    for (const stats::Group &g : retired_)
        g.dump(os);
    if (retiredDropped_ > 0) {
        os << "(" << retiredDropped_
           << " retired stat groups dropped at the " << kMaxRetired
           << "-snapshot cap)\n";
    }
}

void
StatsRegistry::dumpJson(std::ostream &os)
{
    refreshAll();
    os << "{\"schema\":\"pim-mmu-stats-v1\",\"retired_dropped\":"
       << retiredDropped_ << ",\"groups\":[";
    bool first = true;
    for (const Entry &e : live_) {
        if (!first)
            os << ",";
        e.group->dumpJson(os);
        first = false;
    }
    for (const stats::Group &g : retired_) {
        if (!first)
            os << ",";
        g.dumpJson(os);
        first = false;
    }
    os << "]}\n";
}

std::vector<std::string>
StatsRegistry::groupJsons()
{
    refreshAll();
    std::vector<std::string> out;
    out.reserve(live_.size() + retired_.size());
    for (const Entry &e : live_) {
        std::ostringstream os;
        e.group->dumpJson(os);
        out.push_back(os.str());
    }
    for (const stats::Group &g : retired_) {
        std::ostringstream os;
        g.dumpJson(os);
        out.push_back(os.str());
    }
    return out;
}

bool
StatsRegistry::dumpJsonFile(const std::string &path)
{
    std::ofstream os(path);
    if (!os)
        return false;
    dumpJson(os);
    return os.good();
}

} // namespace telemetry
} // namespace pimmmu

/**
 * @file
 * Simulated-time timeline tracer exporting Chrome trace-event JSON
 * (loadable in Perfetto / chrome://tracing).
 *
 * Components register named tracks once (cheap, works while disabled)
 * and record spans / instants / counter samples against them while the
 * timeline is enabled. Each track becomes one "thread" row in the
 * viewer; the simulated picosecond clock is exported as fractional
 * trace microseconds, so the viewer's time axis reads in simulated
 * time.
 *
 * Recording is disabled by default: every record call is a single
 * branch until a bench enables the global timeline via --trace-json.
 *
 * Trace-size controls for long runs (PrIM end-to-end traces reach
 * ~0.5M column-command spans):
 *  - span coalescing (setCoalesceGap): adjacent same-name spans on one
 *    track whose gap is at most the threshold merge into one span;
 *  - track filtering (setTrackFilter): only tracks whose name matches
 *    a comma-separated glob list record events at all.
 */

#ifndef PIMMMU_TELEMETRY_TIMELINE_HH
#define PIMMMU_TELEMETRY_TIMELINE_HH

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "common/types.hh"

namespace pimmmu {
namespace telemetry {

/** Does @p name match the comma-separated glob list (* and ?)? */
bool trackGlobMatch(const std::string &globs, const std::string &name);

class Timeline
{
  public:
    /**
     * The calling thread's default instance (thread-local so parallel
     * sweeps record without racing; sim::SweepRunner merges worker
     * timelines back into the launching thread's instance).
     */
    static Timeline &global();

    void setEnabled(bool on) { enabled_ = on; }
    bool enabled() const { return enabled_; }

    /**
     * Merge spans on the same track with the same name whose
     * inter-span gap is <= @p gapPs into a single span (0 disables,
     * the default). Cuts DRAM column-command traces by an order of
     * magnitude with no visual change at sensible zoom levels.
     */
    void setCoalesceGap(Tick gapPs) { coalesceGapPs_ = gapPs; }
    Tick coalesceGap() const { return coalesceGapPs_; }

    /** Spans absorbed into a predecessor by coalescing so far. */
    std::uint64_t coalescedSpans() const { return coalescedSpans_; }

    /**
     * Only record events on tracks matching @p globs (comma-separated
     * glob patterns, e.g. "dram.*,dce"). Empty (the default) records
     * every track. Applies to already-registered tracks too.
     */
    void setTrackFilter(const std::string &globs);
    const std::string &trackFilter() const { return trackFilter_; }

    /**
     * Create (or look up) a track by name and return its id. Track ids
     * are stable for the lifetime of the timeline; components cache
     * them at construction.
     */
    unsigned track(const std::string &name);

    std::size_t tracks() const { return trackNames_.size(); }
    std::size_t events() const { return events_.size(); }

    /** A [startPs, endPs] slice on @p track ("ph":"X"). */
    void span(unsigned track, const std::string &name, Tick startPs,
              Tick endPs);

    /** A zero-duration marker ("ph":"i"). */
    void instant(unsigned track, const std::string &name, Tick atPs);

    /** A counter-series sample ("ph":"C", one series per name). */
    void counter(unsigned track, const std::string &name, Tick atPs,
                 double value);

    /**
     * Causal flow arrows ("ph":"s"/"t"/"f") linking spans across
     * tracks: a start/step/end event binds to the slice enclosing
     * @p atPs on @p track, and Perfetto draws arrows between events
     * sharing @p flowId. The attribution subsystem uses the
     * descriptor's attribution id as the flow id, so one descriptor's
     * runtime-call, DCE-transfer, and per-channel DRAM-service spans
     * chain visually. Flow ids are renumbered on mergeFrom so sweep
     * jobs never cross-link.
     */
    void flowStart(unsigned track, const std::string &name, Tick atPs,
                   std::uint64_t flowId);
    void flowStep(unsigned track, const std::string &name, Tick atPs,
                  std::uint64_t flowId);
    void flowEnd(unsigned track, const std::string &name, Tick atPs,
                 std::uint64_t flowId);

    /**
     * Move this timeline's tracks and events into a detached Timeline
     * and reset this one to empty (configuration is kept). Used to
     * hand a worker thread's recording to the aggregating thread.
     */
    Timeline take();

    /**
     * Append another timeline's events, remapping its tracks into this
     * one by name. @p trackPrefix (e.g. "job3/") namespaces the merged
     * tracks so concurrent sweep jobs stay distinguishable.
     */
    void mergeFrom(Timeline &&other,
                   const std::string &trackPrefix = std::string());

    /** Copy enabled/coalesce/filter settings from @p other. */
    void configureLike(const Timeline &other);

    /** Drop all events and tracks (not the enabled flag). */
    void clear();

    /** {"traceEvents":[...]} in Chrome trace-event format. */
    void dumpJson(std::ostream &os) const;

    /** dumpJson to a file. @return false on I/O failure. */
    bool dumpJsonFile(const std::string &path) const;

  private:
    enum class Phase : std::uint8_t
    {
        Span,
        Instant,
        Counter,
        FlowStart,
        FlowStep,
        FlowEnd
    };

    struct Event
    {
        Phase phase;
        unsigned track;
        Tick ts;
        Tick dur;
        double value;
        std::string name;
        std::uint64_t flowId = 0;
    };

    bool trackRecords(unsigned track) const;
    void flowEvent(Phase phase, unsigned track, const std::string &name,
                   Tick atPs, std::uint64_t flowId);

    bool enabled_ = false;
    Tick coalesceGapPs_ = 0;
    std::uint64_t coalescedSpans_ = 0;
    std::string trackFilter_;
    std::vector<std::string> trackNames_;
    std::vector<bool> trackEnabled_;
    std::map<std::string, unsigned> trackIds_;
    std::vector<Event> events_;
    /** Per track: index+1 of its most recent event (0 = none). */
    std::vector<std::size_t> lastEventOnTrack_;
    /** Largest flow id recorded; mergeFrom offsets incoming ids past
     *  it so flows from different sweep jobs never share an id. */
    std::uint64_t maxFlowId_ = 0;
};

} // namespace telemetry
} // namespace pimmmu

#endif // PIMMMU_TELEMETRY_TIMELINE_HH

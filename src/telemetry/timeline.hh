/**
 * @file
 * Simulated-time timeline tracer exporting Chrome trace-event JSON
 * (loadable in Perfetto / chrome://tracing).
 *
 * Components register named tracks once (cheap, works while disabled)
 * and record spans / instants / counter samples against them while the
 * timeline is enabled. Each track becomes one "thread" row in the
 * viewer; the simulated picosecond clock is exported as fractional
 * trace microseconds, so the viewer's time axis reads in simulated
 * time.
 *
 * Recording is disabled by default: every record call is a single
 * branch until a bench enables the global timeline via --trace-json.
 */

#ifndef PIMMMU_TELEMETRY_TIMELINE_HH
#define PIMMMU_TELEMETRY_TIMELINE_HH

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "common/types.hh"

namespace pimmmu {
namespace telemetry {

class Timeline
{
  public:
    /** The default process-wide instance. */
    static Timeline &global();

    void setEnabled(bool on) { enabled_ = on; }
    bool enabled() const { return enabled_; }

    /**
     * Create (or look up) a track by name and return its id. Track ids
     * are stable for the lifetime of the timeline; components cache
     * them at construction.
     */
    unsigned track(const std::string &name);

    std::size_t tracks() const { return trackNames_.size(); }
    std::size_t events() const { return events_.size(); }

    /** A [startPs, endPs] slice on @p track ("ph":"X"). */
    void span(unsigned track, const std::string &name, Tick startPs,
              Tick endPs);

    /** A zero-duration marker ("ph":"i"). */
    void instant(unsigned track, const std::string &name, Tick atPs);

    /** A counter-series sample ("ph":"C", one series per name). */
    void counter(unsigned track, const std::string &name, Tick atPs,
                 double value);

    /** Drop all events and tracks (not the enabled flag). */
    void clear();

    /** {"traceEvents":[...]} in Chrome trace-event format. */
    void dumpJson(std::ostream &os) const;

    /** dumpJson to a file. @return false on I/O failure. */
    bool dumpJsonFile(const std::string &path) const;

  private:
    enum class Phase : std::uint8_t
    {
        Span,
        Instant,
        Counter
    };

    struct Event
    {
        Phase phase;
        unsigned track;
        Tick ts;
        Tick dur;
        double value;
        std::string name;
    };

    bool enabled_ = false;
    std::vector<std::string> trackNames_;
    std::map<std::string, unsigned> trackIds_;
    std::vector<Event> events_;
};

} // namespace telemetry
} // namespace pimmmu

#endif // PIMMMU_TELEMETRY_TIMELINE_HH

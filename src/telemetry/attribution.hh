/**
 * @file
 * End-to-end latency attribution for DCE descriptors and kernel
 * launches.
 *
 * Every descriptor (and checked kernel launch) carries a lifecycle
 * record from enqueue to completion. The record is a stage state
 * machine over simulated time: components call enterStage() at each
 * lifecycle transition and the recorder books the elapsed segment into
 * the stage that was active, so the stage buckets partition the
 * descriptor's end-to-end latency exactly — summed buckets always
 * equal (endPs - startPs), which a gtest checks as a conservation
 * property.
 *
 * Stages (transfer path):
 *   QueueWait   descriptor sitting in the DCE ring behind predecessors
 *   Translate   engine setup / AGU priming, begin -> first issue
 *   Preprocess  runtime-side marshalling, guarded functional copy and
 *               MMIO doorbell before the engine sees the descriptor
 *   DramService memory-system service, first issue -> last completion
 *   StallRefresh refresh/bank-conflict blackout carved out of
 *               DramService (channel-averaged overlap with REF windows)
 *   Retry       descriptor-level retry backoff between attempts
 *   Watchdog    no-progress windows recovered by the DCE watchdog
 *   Interrupt   completion interrupt delivery to the driver
 *   TlbWalk     DCE-side TLB lookup + page-table walk time of a
 *               virtually addressed descriptor (carved out of
 *               Preprocess, which absorbs it on the simulated path)
 *   ServeQueue  admission-to-issue wait in the serving layer's
 *               per-tenant queues (serving::Server request records)
 * Kernel launches reuse the same record type with Execute / Verify
 * stages (kernel execution is modeled time, booked directly).
 *
 * On top of the records sit (a) Perfetto flow events linking a
 * descriptor's spans across the DCE / DRAM-channel / DPU timeline
 * tracks (see Timeline::flowStart), (b) a critical-path report —
 * dominant-stage breakdowns, top-K slowest descriptors, per-label and
 * per-DPU-group percentiles — written by `--attrib-json`, and (c) a
 * sim-time occupancy profiler sampling ring depth, outstanding
 * requests and healthy-DPU population into time-weighted histograms.
 *
 * The recorder is disabled by default and zero-cost when off: every
 * hook is a single enabled check, and nothing on the event hot path
 * allocates. Like the Timeline it is thread-local; sim::SweepRunner
 * harvests each job's records and merges them back in job order so
 * reports are deterministic regardless of worker scheduling.
 */

#ifndef PIMMMU_TELEMETRY_ATTRIBUTION_HH
#define PIMMMU_TELEMETRY_ATTRIBUTION_HH

#include <array>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

#include "common/types.hh"

namespace pimmmu {
namespace telemetry {
namespace attribution {

/** Lifecycle stages. Each record's buckets over these partition its
 *  end-to-end latency exactly. */
enum class Stage : unsigned
{
    QueueWait,
    Translate,
    Preprocess,
    DramService,
    StallRefresh,
    Retry,
    Watchdog,
    Interrupt,
    TlbWalk,
    Execute,
    Verify,
    /** Admission-to-issue wait in the serving layer's per-tenant
     *  queues (the weighted-fair scheduler's backlog), carved off the
     *  front of a served request's end-to-end latency. */
    ServeQueue,
    NumStages
};

constexpr std::size_t kNumStages =
    static_cast<std::size_t>(Stage::NumStages);

/** Stage name ("queue_wait", "dram_service", ...). */
const char *stageName(Stage s);

/** What kind of lifecycle the record describes. */
enum class Kind : unsigned
{
    Transfer, //!< a DCE descriptor
    Kernel    //!< a (checked) kernel launch
};

const char *kindName(Kind k);

/** Per-channel service accounting inside one record. */
struct ChannelService
{
    std::uint32_t reads = 0;
    std::uint32_t writes = 0;
    Tick firstPs = kTickMax; //!< first completion on this channel
    Tick lastPs = 0;         //!< last completion on this channel

    bool touched() const { return reads + writes > 0; }
};

/** One completed (or in-flight) lifecycle record. */
struct Record
{
    static constexpr std::size_t kMaxChannels = 16;

    std::uint64_t id = 0; //!< attribution id == Perfetto flow id
    Kind kind = Kind::Transfer;
    std::string label;      //!< workload/bench context at open time
    unsigned dpuGroup = 0;  //!< first target bank / DPU-group index
    std::uint64_t bytes = 0;
    Tick startPs = 0;
    Tick endPs = 0;
    bool failed = false;
    std::uint32_t retries = 0;
    std::uint32_t watchdogResyncs = 0;

    std::array<Tick, kNumStages> stagePs{};
    /** [0] = DRAM-side channels, [1] = PIM-side channels. */
    std::array<std::array<ChannelService, kMaxChannels>, 2> channels{};

    Tick durationPs() const { return endPs - startPs; }

    Tick
    stageSum() const
    {
        Tick sum = 0;
        for (Tick t : stagePs)
            sum += t;
        return sum;
    }

    /** The stage holding the largest share of the latency. */
    Stage dominantStage() const;
};

/**
 * A value-over-sim-time series aggregated into a time-weighted
 * histogram: each update books (now - lastChange) picoseconds of
 * weight at the previous value. Percentiles are therefore "the value
 * the series was at or below for p% of simulated time".
 */
struct OccupancySeries
{
    std::string name;
    double lo = 0.0;
    double hi = 1.0;
    std::vector<std::uint64_t> weights; //!< ps at each bucket's value
    double minSeen = 0.0;
    double maxSeen = 0.0;
    double weightedSum = 0.0; //!< sum(value * ps)
    std::uint64_t totalPs = 0;
    double lastValue = 0.0;
    Tick lastChangePs = 0;
    bool started = false;

    double timeAverage() const
    {
        return totalPs ? weightedSum / static_cast<double>(totalPs)
                       : 0.0;
    }

    double percentile(double p) const;

    /** Fold another series of the same shape into this one. */
    void merge(const OccupancySeries &other);
};

class Recorder
{
  public:
    /** The calling thread's default instance (see file comment). */
    static Recorder &global();

    void setEnabled(bool on) { enabled_ = on; }
    bool enabled() const { return enabled_; }

    /**
     * Label captured into records opened from now on (bench/workload
     * context, e.g. "fig06.sw" or "prim.VA"). Cheap; empty = none.
     */
    void setLabel(const std::string &label) { label_ = label; }
    const std::string &label() const { return label_; }

    // ------------------------------------------------------------------
    // Lifecycle records.
    // ------------------------------------------------------------------

    /**
     * Open a record at @p now with @p initial as its first stage.
     * @return the attribution id (also used as the Perfetto flow id),
     * or 0 when the recorder is disabled.
     */
    std::uint64_t open(Kind kind, Tick now, Stage initial,
                       unsigned dpuGroup, std::uint64_t bytes);

    /** Close the active stage segment and start @p s. No-op for id 0
     *  or an unknown id (a record opened before a disable). */
    void enterStage(std::uint64_t id, Stage s, Tick now);

    /**
     * Book the window [stallStart, now] into @p stall without leaving
     * the current stage: the current stage absorbs up to @p stallStart
     * and resumes at @p now. Used by the DCE watchdog to attribute
     * no-progress windows.
     */
    void bookStall(std::uint64_t id, Stage stall, Tick stallStart,
                   Tick now);

    /**
     * Move @p ps of already-booked time from @p from into @p to
     * (clamped to what @p from holds). Used for the refresh/bank-
     * conflict carve-out of DramService; conserves the stage sum.
     */
    void carve(std::uint64_t id, Stage from, Stage to, Tick ps);

    /** Book @p ps of modeled time directly into @p s and extend the
     *  record's open segment start past it (kernel launches, whose
     *  execution is modeled rather than event-driven). */
    void addModeled(std::uint64_t id, Stage s, Tick ps);

    /** Account one serviced line on a channel. @p pimSpace selects the
     *  PIM-side controller set. */
    void noteChannel(std::uint64_t id, bool pimSpace, unsigned channel,
                     bool write, Tick now);

    void noteRetry(std::uint64_t id);
    void noteWatchdogResync(std::uint64_t id);

    /** Finish the record: closes the active stage at @p now and moves
     *  it to the completed list. */
    void close(std::uint64_t id, Tick now, bool failed);

    /** A record currently open (test/introspection aid). */
    bool isOpen(std::uint64_t id) const;

    /** Read-only view of a still-open record (nullptr when unknown);
     *  the pointer is invalidated by the next recorder call. */
    const Record *peek(std::uint64_t id) const;

    std::size_t openRecords() const { return open_.size(); }
    const std::vector<Record> &records() const { return completed_; }

    // ------------------------------------------------------------------
    // Occupancy profiler.
    // ------------------------------------------------------------------

    /**
     * Create (or look up) a time-weighted series. Ids are stable for
     * the recorder's lifetime; components cache them at construction.
     * Registration works while disabled (like Timeline::track).
     */
    unsigned series(const std::string &name, double lo, double hi,
                    std::size_t buckets);

    /** The series value changed to @p value at @p now. */
    void sampleOccupancy(unsigned seriesId, Tick now, double value);

    const std::vector<OccupancySeries> &seriesData() const
    {
        return series_;
    }

    // ------------------------------------------------------------------
    // Sweep aggregation.
    // ------------------------------------------------------------------

    /** Move records and series into a detached Recorder and reset
     *  (configuration kept) — worker-thread harvesting. */
    Recorder take();

    /**
     * Append another recorder's completed records (re-numbered after
     * this one's, with @p labelPrefix prepended to their labels) and
     * fold its occupancy series in by name. Merge in job-index order
     * for deterministic reports.
     */
    void mergeFrom(Recorder &&other,
                   const std::string &labelPrefix = std::string());

    /** Copy enabled/label settings from @p other. */
    void configureLike(const Recorder &other);

    /** Drop all records and series (not the enabled flag). */
    void clear();

    // ------------------------------------------------------------------
    // Critical-path report.
    // ------------------------------------------------------------------

    /**
     * {"schema":"pim-mmu-attrib-v1",...}: per-descriptor stage
     * breakdowns, dominant-stage aggregation, top-K slowest, per-label
     * and per-DPU-group latency percentiles, occupancy histograms.
     */
    void dumpJson(std::ostream &os, std::size_t topK = 10) const;

    /** dumpJson to a file. @return false on I/O failure. */
    bool dumpJsonFile(const std::string &path,
                      std::size_t topK = 10) const;

  private:
    struct OpenRecord
    {
        Record record;
        Stage current = Stage::QueueWait;
        Tick segmentStart = 0;
    };

    OpenRecord *find(std::uint64_t id);
    const OpenRecord *find(std::uint64_t id) const;

    bool enabled_ = false;
    std::string label_;
    std::uint64_t nextId_ = 1; //!< 0 means "no record"
    std::vector<OpenRecord> open_;
    std::vector<Record> completed_;
    std::vector<OccupancySeries> series_;
    std::map<std::string, unsigned> seriesIds_;
};

} // namespace attribution
} // namespace telemetry
} // namespace pimmmu

#endif // PIMMMU_TELEMETRY_ATTRIBUTION_HH

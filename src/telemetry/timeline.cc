#include "telemetry/timeline.hh"

#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <ostream>

#include "common/stats.hh"

namespace pimmmu {
namespace telemetry {

Timeline &
Timeline::global()
{
    static Timeline instance;
    return instance;
}

unsigned
Timeline::track(const std::string &name)
{
    auto it = trackIds_.find(name);
    if (it != trackIds_.end())
        return it->second;
    // tid 0 is reserved for the process row; tracks start at 1.
    const unsigned id = static_cast<unsigned>(trackNames_.size()) + 1;
    trackNames_.push_back(name);
    trackIds_.emplace(name, id);
    return id;
}

void
Timeline::span(unsigned track, const std::string &name, Tick startPs,
               Tick endPs)
{
    if (!enabled_)
        return;
    events_.push_back(Event{Phase::Span, track, startPs,
                            endPs >= startPs ? endPs - startPs : 0, 0.0,
                            name});
}

void
Timeline::instant(unsigned track, const std::string &name, Tick atPs)
{
    if (!enabled_)
        return;
    events_.push_back(Event{Phase::Instant, track, atPs, 0, 0.0, name});
}

void
Timeline::counter(unsigned track, const std::string &name, Tick atPs,
                  double value)
{
    if (!enabled_)
        return;
    events_.push_back(
        Event{Phase::Counter, track, atPs, 0, value, name});
}

void
Timeline::clear()
{
    trackNames_.clear();
    trackIds_.clear();
    events_.clear();
}

namespace {

/** Picoseconds -> trace microseconds with full ps resolution. */
void
emitTs(std::ostream &os, Tick ps)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%06u",
                  static_cast<std::uint64_t>(ps / 1000000),
                  static_cast<unsigned>(ps % 1000000));
    os << buf;
}

} // namespace

void
Timeline::dumpJson(std::ostream &os) const
{
    os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
    os << "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
          "\"args\":{\"name\":\"pim-mmu-sim\"}}";
    for (std::size_t i = 0; i < trackNames_.size(); ++i) {
        const unsigned tid = static_cast<unsigned>(i) + 1;
        os << ",\n{\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
           << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
           << stats::jsonEscape(trackNames_[i]) << "\"}}";
        os << ",\n{\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
           << ",\"name\":\"thread_sort_index\",\"args\":{\"sort_index\":"
           << tid << "}}";
    }
    for (const Event &e : events_) {
        os << ",\n{\"pid\":1,\"tid\":" << e.track << ",\"name\":\""
           << stats::jsonEscape(e.name) << "\",\"cat\":\"sim\",\"ts\":";
        emitTs(os, e.ts);
        switch (e.phase) {
          case Phase::Span:
            os << ",\"ph\":\"X\",\"dur\":";
            emitTs(os, e.dur);
            break;
          case Phase::Instant:
            os << ",\"ph\":\"i\",\"s\":\"t\"";
            break;
          case Phase::Counter: {
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%.12g", e.value);
            os << ",\"ph\":\"C\",\"args\":{\"value\":" << buf << "}";
            break;
          }
        }
        os << "}";
    }
    os << "\n]}\n";
}

bool
Timeline::dumpJsonFile(const std::string &path) const
{
    std::ofstream os(path);
    if (!os)
        return false;
    dumpJson(os);
    return os.good();
}

} // namespace telemetry
} // namespace pimmmu

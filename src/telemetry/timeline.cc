#include "telemetry/timeline.hh"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <utility>

#include "common/stats.hh"

namespace pimmmu {
namespace telemetry {

namespace {

/** Classic iterative glob match supporting '*' and '?'. */
bool
globMatch(const char *pat, const char *patEnd, const std::string &name)
{
    const char *s = name.c_str();
    const char *star = nullptr;
    const char *starS = nullptr;
    const char *p = pat;
    while (*s) {
        if (p < patEnd && (*p == '?' || *p == *s)) {
            ++p;
            ++s;
        } else if (p < patEnd && *p == '*') {
            star = p++;
            starS = s;
        } else if (star) {
            p = star + 1;
            s = ++starS;
        } else {
            return false;
        }
    }
    while (p < patEnd && *p == '*')
        ++p;
    return p == patEnd;
}

} // namespace

bool
trackGlobMatch(const std::string &globs, const std::string &name)
{
    if (globs.empty())
        return true;
    std::size_t begin = 0;
    while (begin <= globs.size()) {
        std::size_t end = globs.find(',', begin);
        if (end == std::string::npos)
            end = globs.size();
        if (end > begin &&
            globMatch(globs.data() + begin, globs.data() + end, name))
            return true;
        begin = end + 1;
    }
    return false;
}

Timeline &
Timeline::global()
{
    static thread_local Timeline instance;
    return instance;
}

void
Timeline::setTrackFilter(const std::string &globs)
{
    trackFilter_ = globs;
    for (std::size_t i = 0; i < trackNames_.size(); ++i)
        trackEnabled_[i] = trackGlobMatch(trackFilter_, trackNames_[i]);
}

unsigned
Timeline::track(const std::string &name)
{
    auto it = trackIds_.find(name);
    if (it != trackIds_.end())
        return it->second;
    // tid 0 is reserved for the process row; tracks start at 1.
    const unsigned id = static_cast<unsigned>(trackNames_.size()) + 1;
    trackNames_.push_back(name);
    trackEnabled_.push_back(trackGlobMatch(trackFilter_, name));
    lastEventOnTrack_.push_back(0);
    trackIds_.emplace(name, id);
    return id;
}

bool
Timeline::trackRecords(unsigned track) const
{
    return track >= 1 && track <= trackEnabled_.size() &&
           trackEnabled_[track - 1];
}

void
Timeline::span(unsigned track, const std::string &name, Tick startPs,
               Tick endPs)
{
    if (!enabled_ || !trackRecords(track))
        return;
    const Tick dur = endPs >= startPs ? endPs - startPs : 0;
    if (coalesceGapPs_ > 0) {
        const std::size_t lastIdx = lastEventOnTrack_[track - 1];
        if (lastIdx > 0) {
            Event &last = events_[lastIdx - 1];
            const Tick lastEnd = last.ts + last.dur;
            if (last.phase == Phase::Span && startPs >= lastEnd &&
                startPs - lastEnd <= coalesceGapPs_ &&
                last.name == name) {
                last.dur = endPs >= last.ts ? endPs - last.ts : 0;
                ++coalescedSpans_;
                return;
            }
        }
    }
    events_.push_back(Event{Phase::Span, track, startPs, dur, 0.0, name});
    lastEventOnTrack_[track - 1] = events_.size();
}

void
Timeline::instant(unsigned track, const std::string &name, Tick atPs)
{
    if (!enabled_ || !trackRecords(track))
        return;
    events_.push_back(Event{Phase::Instant, track, atPs, 0, 0.0, name});
    lastEventOnTrack_[track - 1] = events_.size();
}

void
Timeline::counter(unsigned track, const std::string &name, Tick atPs,
                  double value)
{
    if (!enabled_ || !trackRecords(track))
        return;
    events_.push_back(
        Event{Phase::Counter, track, atPs, 0, value, name});
    lastEventOnTrack_[track - 1] = events_.size();
}

void
Timeline::flowEvent(Phase phase, unsigned track,
                    const std::string &name, Tick atPs,
                    std::uint64_t flowId)
{
    if (!enabled_ || !trackRecords(track) || flowId == 0)
        return;
    events_.push_back(
        Event{phase, track, atPs, 0, 0.0, name, flowId});
    lastEventOnTrack_[track - 1] = events_.size();
    maxFlowId_ = std::max(maxFlowId_, flowId);
}

void
Timeline::flowStart(unsigned track, const std::string &name, Tick atPs,
                    std::uint64_t flowId)
{
    flowEvent(Phase::FlowStart, track, name, atPs, flowId);
}

void
Timeline::flowStep(unsigned track, const std::string &name, Tick atPs,
                   std::uint64_t flowId)
{
    flowEvent(Phase::FlowStep, track, name, atPs, flowId);
}

void
Timeline::flowEnd(unsigned track, const std::string &name, Tick atPs,
                  std::uint64_t flowId)
{
    flowEvent(Phase::FlowEnd, track, name, atPs, flowId);
}

Timeline
Timeline::take()
{
    Timeline out;
    out.configureLike(*this);
    out.trackNames_ = std::move(trackNames_);
    out.trackEnabled_ = std::move(trackEnabled_);
    out.trackIds_ = std::move(trackIds_);
    out.events_ = std::move(events_);
    out.lastEventOnTrack_ = std::move(lastEventOnTrack_);
    out.coalescedSpans_ = coalescedSpans_;
    out.maxFlowId_ = maxFlowId_;
    clear();
    return out;
}

void
Timeline::mergeFrom(Timeline &&other, const std::string &trackPrefix)
{
    std::vector<unsigned> remap(other.trackNames_.size());
    for (std::size_t i = 0; i < other.trackNames_.size(); ++i)
        remap[i] = track(trackPrefix + other.trackNames_[i]);
    const std::uint64_t flowOffset = maxFlowId_;
    for (Event &e : other.events_) {
        e.track = remap[e.track - 1];
        if (e.flowId != 0)
            e.flowId += flowOffset;
        // No cross-boundary coalescing: append verbatim.
        events_.push_back(std::move(e));
        lastEventOnTrack_[e.track - 1] = 0;
    }
    coalescedSpans_ += other.coalescedSpans_;
    maxFlowId_ = flowOffset + other.maxFlowId_;
    other.clear();
}

void
Timeline::configureLike(const Timeline &other)
{
    enabled_ = other.enabled_;
    coalesceGapPs_ = other.coalesceGapPs_;
    setTrackFilter(other.trackFilter_);
}

void
Timeline::clear()
{
    trackNames_.clear();
    trackEnabled_.clear();
    trackIds_.clear();
    events_.clear();
    lastEventOnTrack_.clear();
    coalescedSpans_ = 0;
    maxFlowId_ = 0;
}

namespace {

/** Picoseconds -> trace microseconds with full ps resolution. */
void
emitTs(std::ostream &os, Tick ps)
{
    char buf[40];
    std::snprintf(buf, sizeof(buf), "%" PRIu64 ".%06u",
                  static_cast<std::uint64_t>(ps / 1000000),
                  static_cast<unsigned>(ps % 1000000));
    os << buf;
}

} // namespace

void
Timeline::dumpJson(std::ostream &os) const
{
    os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
    os << "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\","
          "\"args\":{\"name\":\"pim-mmu-sim\"}}";
    for (std::size_t i = 0; i < trackNames_.size(); ++i) {
        const unsigned tid = static_cast<unsigned>(i) + 1;
        os << ",\n{\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
           << ",\"name\":\"thread_name\",\"args\":{\"name\":\""
           << stats::jsonEscape(trackNames_[i]) << "\"}}";
        os << ",\n{\"ph\":\"M\",\"pid\":1,\"tid\":" << tid
           << ",\"name\":\"thread_sort_index\",\"args\":{\"sort_index\":"
           << tid << "}}";
    }
    for (const Event &e : events_) {
        os << ",\n{\"pid\":1,\"tid\":" << e.track << ",\"name\":\""
           << stats::jsonEscape(e.name) << "\",\"cat\":\"sim\",\"ts\":";
        emitTs(os, e.ts);
        switch (e.phase) {
          case Phase::Span:
            os << ",\"ph\":\"X\",\"dur\":";
            emitTs(os, e.dur);
            break;
          case Phase::Instant:
            os << ",\"ph\":\"i\",\"s\":\"t\"";
            break;
          case Phase::Counter: {
            char buf[32];
            std::snprintf(buf, sizeof(buf), "%.12g", e.value);
            os << ",\"ph\":\"C\",\"args\":{\"value\":" << buf << "}";
            break;
          }
          case Phase::FlowStart:
            os << ",\"ph\":\"s\",\"id\":" << e.flowId;
            break;
          case Phase::FlowStep:
            os << ",\"ph\":\"t\",\"id\":" << e.flowId;
            break;
          case Phase::FlowEnd:
            // bp:e binds the arrow to the enclosing slice instead of
            // the next one, matching where the descriptor finished.
            os << ",\"ph\":\"f\",\"bp\":\"e\",\"id\":" << e.flowId;
            break;
        }
        os << "}";
    }
    os << "\n]}\n";
}

bool
Timeline::dumpJsonFile(const std::string &path) const
{
    std::ofstream os(path);
    if (!os)
        return false;
    dumpJson(os);
    return os.good();
}

} // namespace telemetry
} // namespace pimmmu

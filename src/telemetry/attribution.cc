#include "telemetry/attribution.hh"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <ostream>
#include <utility>

#include "common/stats.hh"

namespace pimmmu {
namespace telemetry {
namespace attribution {

const char *
stageName(Stage s)
{
    switch (s) {
      case Stage::QueueWait:
        return "queue_wait";
      case Stage::Translate:
        return "translate";
      case Stage::Preprocess:
        return "preprocess";
      case Stage::DramService:
        return "dram_service";
      case Stage::StallRefresh:
        return "stall_refresh";
      case Stage::Retry:
        return "retry";
      case Stage::Watchdog:
        return "watchdog";
      case Stage::Interrupt:
        return "interrupt";
      case Stage::TlbWalk:
        return "tlb_walk";
      case Stage::Execute:
        return "execute";
      case Stage::Verify:
        return "verify";
      case Stage::ServeQueue:
        return "serve_queue";
      default:
        return "unknown";
    }
}

const char *
kindName(Kind k)
{
    return k == Kind::Transfer ? "transfer" : "kernel";
}

Stage
Record::dominantStage() const
{
    std::size_t best = 0;
    for (std::size_t i = 1; i < kNumStages; ++i) {
        if (stagePs[i] > stagePs[best])
            best = i;
    }
    return static_cast<Stage>(best);
}

double
OccupancySeries::percentile(double p) const
{
    if (totalPs == 0)
        return 0.0;
    const double target =
        std::clamp(p, 0.0, 100.0) / 100.0 *
        static_cast<double>(totalPs);
    const double width =
        (hi - lo) / static_cast<double>(weights.size());
    double cum = 0.0;
    for (std::size_t i = 0; i < weights.size(); ++i) {
        cum += static_cast<double>(weights[i]);
        if (cum >= target) {
            // Upper edge of the bucket: "value was <= this for p% of
            // sim time". Clamp into the observed range so a series
            // that never left one value reports that value.
            const double edge = lo + width * static_cast<double>(i + 1);
            return std::clamp(edge, minSeen, maxSeen);
        }
    }
    return maxSeen;
}

void
OccupancySeries::merge(const OccupancySeries &other)
{
    if (other.totalPs == 0)
        return;
    if (weights.size() != other.weights.size() || lo != other.lo ||
        hi != other.hi) {
        // Shape mismatch (config drift between jobs): keep ours.
        return;
    }
    for (std::size_t i = 0; i < weights.size(); ++i)
        weights[i] += other.weights[i];
    if (totalPs == 0) {
        minSeen = other.minSeen;
        maxSeen = other.maxSeen;
    } else {
        minSeen = std::min(minSeen, other.minSeen);
        maxSeen = std::max(maxSeen, other.maxSeen);
    }
    weightedSum += other.weightedSum;
    totalPs += other.totalPs;
}

Recorder &
Recorder::global()
{
    static thread_local Recorder instance;
    return instance;
}

const Recorder::OpenRecord *
Recorder::find(std::uint64_t id) const
{
    // Ids are minted in increasing order and open_ stays sorted, so
    // lookups on the per-line hot path are a binary search.
    auto it = std::lower_bound(
        open_.begin(), open_.end(), id,
        [](const OpenRecord &o, std::uint64_t v) {
            return o.record.id < v;
        });
    if (it == open_.end() || it->record.id != id)
        return nullptr;
    return &*it;
}

Recorder::OpenRecord *
Recorder::find(std::uint64_t id)
{
    return const_cast<OpenRecord *>(
        static_cast<const Recorder *>(this)->find(id));
}

std::uint64_t
Recorder::open(Kind kind, Tick now, Stage initial, unsigned dpuGroup,
               std::uint64_t bytes)
{
    if (!enabled_)
        return 0;
    OpenRecord o;
    o.record.id = nextId_++;
    o.record.kind = kind;
    o.record.label = label_;
    o.record.dpuGroup = dpuGroup;
    o.record.bytes = bytes;
    o.record.startPs = now;
    o.current = initial;
    o.segmentStart = now;
    open_.push_back(std::move(o));
    return open_.back().record.id;
}

void
Recorder::enterStage(std::uint64_t id, Stage s, Tick now)
{
    if (id == 0)
        return;
    OpenRecord *o = find(id);
    if (!o)
        return;
    if (now > o->segmentStart) {
        o->record.stagePs[static_cast<std::size_t>(o->current)] +=
            now - o->segmentStart;
    }
    o->current = s;
    o->segmentStart = now;
}

void
Recorder::bookStall(std::uint64_t id, Stage stall, Tick stallStart,
                    Tick now)
{
    if (id == 0)
        return;
    OpenRecord *o = find(id);
    if (!o || now <= o->segmentStart)
        return;
    // The current stage keeps [segmentStart, stallStart); the stall
    // window [stallStart, now) goes to the stall bucket; the stage
    // resumes at now. A stallStart before the segment began books the
    // whole segment as stall.
    const Tick from = std::max(o->segmentStart, stallStart);
    if (from > o->segmentStart) {
        o->record.stagePs[static_cast<std::size_t>(o->current)] +=
            from - o->segmentStart;
    }
    o->record.stagePs[static_cast<std::size_t>(stall)] += now - from;
    o->segmentStart = now;
}

void
Recorder::carve(std::uint64_t id, Stage from, Stage to, Tick ps)
{
    if (id == 0 || ps == 0)
        return;
    OpenRecord *o = find(id);
    if (!o)
        return;
    Tick &src = o->record.stagePs[static_cast<std::size_t>(from)];
    const Tick moved = std::min(src, ps);
    src -= moved;
    o->record.stagePs[static_cast<std::size_t>(to)] += moved;
}

void
Recorder::addModeled(std::uint64_t id, Stage s, Tick ps)
{
    if (id == 0 || ps == 0)
        return;
    OpenRecord *o = find(id);
    if (!o)
        return;
    o->record.stagePs[static_cast<std::size_t>(s)] += ps;
    // Modeled time does not advance the event clock: push the open
    // segment's start forward so close() still conserves.
    o->segmentStart += ps;
}

void
Recorder::noteChannel(std::uint64_t id, bool pimSpace,
                      unsigned channel, bool write, Tick now)
{
    if (id == 0)
        return;
    OpenRecord *o = find(id);
    if (!o || channel >= Record::kMaxChannels)
        return;
    ChannelService &cs =
        o->record.channels[pimSpace ? 1 : 0][channel];
    if (write)
        ++cs.writes;
    else
        ++cs.reads;
    cs.firstPs = std::min(cs.firstPs, now);
    cs.lastPs = std::max(cs.lastPs, now);
}

void
Recorder::noteRetry(std::uint64_t id)
{
    if (id == 0)
        return;
    if (OpenRecord *o = find(id))
        ++o->record.retries;
}

void
Recorder::noteWatchdogResync(std::uint64_t id)
{
    if (id == 0)
        return;
    if (OpenRecord *o = find(id))
        ++o->record.watchdogResyncs;
}

void
Recorder::close(std::uint64_t id, Tick now, bool failed)
{
    if (id == 0)
        return;
    for (std::size_t i = 0; i < open_.size(); ++i) {
        if (open_[i].record.id != id)
            continue;
        OpenRecord o = std::move(open_[i]);
        open_.erase(open_.begin() + static_cast<std::ptrdiff_t>(i));
        if (now > o.segmentStart) {
            o.record.stagePs[static_cast<std::size_t>(o.current)] +=
                now - o.segmentStart;
        }
        // Modeled time (addModeled) can push segmentStart past now;
        // endPs covers booked time either way so duration == stageSum.
        o.record.endPs = o.record.startPs + o.record.stageSum();
        o.record.failed = failed;
        completed_.push_back(std::move(o.record));
        return;
    }
}

bool
Recorder::isOpen(std::uint64_t id) const
{
    return find(id) != nullptr;
}

const Record *
Recorder::peek(std::uint64_t id) const
{
    const OpenRecord *o = find(id);
    return o ? &o->record : nullptr;
}

unsigned
Recorder::series(const std::string &name, double lo, double hi,
                 std::size_t buckets)
{
    auto it = seriesIds_.find(name);
    if (it != seriesIds_.end())
        return it->second;
    const unsigned id = static_cast<unsigned>(series_.size());
    OccupancySeries s;
    s.name = name;
    s.lo = lo;
    s.hi = hi > lo ? hi : lo + 1.0;
    s.weights.assign(buckets ? buckets : 1, 0);
    series_.push_back(std::move(s));
    seriesIds_.emplace(name, id);
    return id;
}

void
Recorder::sampleOccupancy(unsigned seriesId, Tick now, double value)
{
    if (!enabled_ || seriesId >= series_.size())
        return;
    OccupancySeries &s = series_[seriesId];
    if (s.started && now > s.lastChangePs) {
        const std::uint64_t dt = now - s.lastChangePs;
        const double width =
            (s.hi - s.lo) / static_cast<double>(s.weights.size());
        double idx = (s.lastValue - s.lo) / width;
        std::size_t bucket =
            idx <= 0.0 ? 0
                       : std::min(s.weights.size() - 1,
                                  static_cast<std::size_t>(idx));
        s.weights[bucket] += dt;
        s.weightedSum +=
            s.lastValue * static_cast<double>(dt);
        s.totalPs += dt;
    }
    if (!s.started) {
        s.minSeen = s.maxSeen = value;
        s.started = true;
    } else {
        s.minSeen = std::min(s.minSeen, value);
        s.maxSeen = std::max(s.maxSeen, value);
    }
    s.lastValue = value;
    s.lastChangePs = now;
}

Recorder
Recorder::take()
{
    Recorder out;
    out.configureLike(*this);
    out.nextId_ = nextId_;
    out.open_ = std::move(open_);
    out.completed_ = std::move(completed_);
    out.series_ = std::move(series_);
    out.seriesIds_ = std::move(seriesIds_);
    clear();
    return out;
}

void
Recorder::mergeFrom(Recorder &&other, const std::string &labelPrefix)
{
    for (Record &r : other.completed_) {
        r.id = nextId_++;
        if (!labelPrefix.empty())
            r.label = labelPrefix + r.label;
        completed_.push_back(std::move(r));
    }
    for (OccupancySeries &s : other.series_) {
        const unsigned id =
            series(s.name, s.lo, s.hi, s.weights.size());
        series_[id].merge(s);
    }
    other.clear();
}

void
Recorder::configureLike(const Recorder &other)
{
    enabled_ = other.enabled_;
    label_ = other.label_;
}

void
Recorder::clear()
{
    nextId_ = 1;
    open_.clear();
    completed_.clear();
    series_.clear();
    seriesIds_.clear();
}

namespace {

void
emitDouble(std::ostream &os, double v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.12g", v);
    os << buf;
}

/** Latency percentile over a sorted duration list (nearest-rank). */
Tick
sortedPercentile(const std::vector<Tick> &sorted, double p)
{
    if (sorted.empty())
        return 0;
    const double rank =
        std::clamp(p, 0.0, 100.0) / 100.0 *
        static_cast<double>(sorted.size() - 1);
    return sorted[static_cast<std::size_t>(rank + 0.5)];
}

struct LatencyBucket
{
    std::vector<Tick> durations;
    std::uint64_t bytes = 0;
    std::array<Tick, kNumStages> stagePs{};
};

void
emitLatencyBucket(std::ostream &os, const std::string &key,
                  LatencyBucket &b)
{
    std::sort(b.durations.begin(), b.durations.end());
    Tick sum = 0;
    for (Tick d : b.durations)
        sum += d;
    os << "{\"name\":\"" << stats::jsonEscape(key)
       << "\",\"count\":" << b.durations.size()
       << ",\"bytes\":" << b.bytes << ",\"mean_ps\":"
       << (b.durations.empty() ? 0 : sum / b.durations.size())
       << ",\"p50_ps\":" << sortedPercentile(b.durations, 50.0)
       << ",\"p95_ps\":" << sortedPercentile(b.durations, 95.0)
       << ",\"p99_ps\":" << sortedPercentile(b.durations, 99.0)
       << ",\"max_ps\":"
       << (b.durations.empty() ? 0 : b.durations.back())
       << ",\"stages\":{";
    bool first = true;
    for (std::size_t i = 0; i < kNumStages; ++i) {
        if (b.stagePs[i] == 0)
            continue;
        if (!first)
            os << ",";
        first = false;
        os << "\"" << stageName(static_cast<Stage>(i))
           << "\":" << b.stagePs[i];
    }
    os << "}}";
}

} // namespace

void
Recorder::dumpJson(std::ostream &os, std::size_t topK) const
{
    os << "{\"schema\":\"pim-mmu-attrib-v1\",\"records\":"
       << completed_.size() << ",\"open_records\":" << open_.size()
       << ",\n";

    // Aggregate stage totals + dominant-stage census.
    std::array<Tick, kNumStages> totals{};
    std::array<std::uint64_t, kNumStages> dominant{};
    for (const Record &r : completed_) {
        for (std::size_t i = 0; i < kNumStages; ++i)
            totals[i] += r.stagePs[i];
        ++dominant[static_cast<std::size_t>(r.dominantStage())];
    }
    os << "\"stage_totals_ps\":{";
    bool first = true;
    for (std::size_t i = 0; i < kNumStages; ++i) {
        if (totals[i] == 0)
            continue;
        if (!first)
            os << ",";
        first = false;
        os << "\"" << stageName(static_cast<Stage>(i))
           << "\":" << totals[i];
    }
    os << "},\n\"dominant_stage_counts\":{";
    first = true;
    for (std::size_t i = 0; i < kNumStages; ++i) {
        if (dominant[i] == 0)
            continue;
        if (!first)
            os << ",";
        first = false;
        os << "\"" << stageName(static_cast<Stage>(i))
           << "\":" << dominant[i];
    }
    os << "},\n";

    // Per-label and per-DPU-group latency summaries.
    std::map<std::string, LatencyBucket> byLabel;
    std::map<unsigned, LatencyBucket> byGroup;
    for (const Record &r : completed_) {
        LatencyBucket &lb =
            byLabel[r.label.empty() ? "(unlabeled)" : r.label];
        lb.durations.push_back(r.durationPs());
        lb.bytes += r.bytes;
        LatencyBucket &gb = byGroup[r.dpuGroup];
        gb.durations.push_back(r.durationPs());
        gb.bytes += r.bytes;
        for (std::size_t i = 0; i < kNumStages; ++i) {
            lb.stagePs[i] += r.stagePs[i];
            gb.stagePs[i] += r.stagePs[i];
        }
    }
    os << "\"by_label\":[";
    first = true;
    for (auto &kv : byLabel) {
        if (!first)
            os << ",\n";
        first = false;
        emitLatencyBucket(os, kv.first, kv.second);
    }
    os << "],\n\"by_dpu_group\":[";
    first = true;
    for (auto &kv : byGroup) {
        if (!first)
            os << ",\n";
        first = false;
        emitLatencyBucket(os, "group" + std::to_string(kv.first),
                          kv.second);
    }
    os << "],\n";

    // Top-K slowest descriptors with full stage + channel breakdowns.
    std::vector<const Record *> slowest;
    slowest.reserve(completed_.size());
    for (const Record &r : completed_)
        slowest.push_back(&r);
    std::stable_sort(slowest.begin(), slowest.end(),
                     [](const Record *a, const Record *b) {
                         return a->durationPs() > b->durationPs();
                     });
    if (slowest.size() > topK)
        slowest.resize(topK);
    os << "\"slowest\":[";
    first = true;
    for (const Record *r : slowest) {
        if (!first)
            os << ",\n";
        first = false;
        os << "{\"id\":" << r->id << ",\"kind\":\""
           << kindName(r->kind) << "\",\"label\":\""
           << stats::jsonEscape(r->label) << "\",\"dpu_group\":"
           << r->dpuGroup << ",\"bytes\":" << r->bytes
           << ",\"start_ps\":" << r->startPs
           << ",\"end_ps\":" << r->endPs
           << ",\"duration_ps\":" << r->durationPs()
           << ",\"failed\":" << (r->failed ? "true" : "false")
           << ",\"retries\":" << r->retries
           << ",\"watchdog_resyncs\":" << r->watchdogResyncs
           << ",\"dominant\":\"" << stageName(r->dominantStage())
           << "\",\"stages\":{";
        bool sFirst = true;
        for (std::size_t i = 0; i < kNumStages; ++i) {
            if (r->stagePs[i] == 0)
                continue;
            if (!sFirst)
                os << ",";
            sFirst = false;
            os << "\"" << stageName(static_cast<Stage>(i))
               << "\":" << r->stagePs[i];
        }
        os << "},\"channels\":[";
        bool cFirst = true;
        for (unsigned space = 0; space < 2; ++space) {
            for (unsigned ch = 0; ch < Record::kMaxChannels; ++ch) {
                const ChannelService &cs = r->channels[space][ch];
                if (!cs.touched())
                    continue;
                if (!cFirst)
                    os << ",";
                cFirst = false;
                os << "{\"space\":\""
                   << (space ? "pim" : "dram") << "\",\"ch\":" << ch
                   << ",\"reads\":" << cs.reads
                   << ",\"writes\":" << cs.writes
                   << ",\"first_ps\":" << cs.firstPs
                   << ",\"last_ps\":" << cs.lastPs << "}";
            }
        }
        os << "]}";
    }
    os << "],\n";

    // Occupancy series.
    os << "\"occupancy\":[";
    first = true;
    for (const OccupancySeries &s : series_) {
        if (!first)
            os << ",\n";
        first = false;
        os << "{\"name\":\"" << stats::jsonEscape(s.name)
           << "\",\"total_ps\":" << s.totalPs << ",\"min\":";
        emitDouble(os, s.minSeen);
        os << ",\"max\":";
        emitDouble(os, s.maxSeen);
        os << ",\"time_avg\":";
        emitDouble(os, s.timeAverage());
        os << ",\"p50\":";
        emitDouble(os, s.percentile(50.0));
        os << ",\"p95\":";
        emitDouble(os, s.percentile(95.0));
        os << ",\"p99\":";
        emitDouble(os, s.percentile(99.0));
        os << "}";
    }
    os << "]}\n";
}

bool
Recorder::dumpJsonFile(const std::string &path, std::size_t topK) const
{
    std::ofstream os(path);
    if (!os)
        return false;
    dumpJson(os, topK);
    return os.good();
}

} // namespace attribution
} // namespace telemetry
} // namespace pimmmu

/**
 * @file
 * Analytic DPU kernel execution-time model.
 *
 * The paper measures PIM kernel time on real UPMEM hardware (section V);
 * PIM-MMU does not change kernel time, only transfer time. We therefore
 * substitute a calibrated analytic model: a fixed launch overhead plus a
 * per-byte processing cost at the DPU's effective streaming rate. Each
 * PrIM workload supplies its own constants (see src/workloads/prim.hh).
 */

#ifndef PIMMMU_PIM_KERNEL_MODEL_HH
#define PIMMMU_PIM_KERNEL_MODEL_HH

#include <cstdint>

#include "common/types.hh"

namespace pimmmu {
namespace device {

/** Per-kernel timing constants. */
struct KernelModel
{
    /** DPU pipeline clock (UPMEM P21: 350 MHz). */
    double dpuMhz = 350.0;

    /** Average pipeline cycles spent per input byte (includes MRAM
     *  access amortization; ~1 GB/s streaming => ~0.35 cycles/B). */
    double cyclesPerByte = 1.0;

    /** Fixed per-launch overhead in microseconds. */
    double launchOverheadUs = 20.0;

    /** Modeled execution time for @p bytesPerDpu input bytes. */
    Tick
    execTimePs(std::uint64_t bytesPerDpu) const
    {
        const double cycles =
            cyclesPerByte * static_cast<double>(bytesPerDpu);
        const double us = launchOverheadUs + cycles / dpuMhz;
        return static_cast<Tick>(us * static_cast<double>(kPsPerUs));
    }
};

} // namespace device
} // namespace pimmmu

#endif // PIMMMU_PIM_KERNEL_MODEL_HH

/**
 * @file
 * Geometry of a UPMEM-like bank-level PIM subsystem.
 *
 * The memory controller sees ordinary DDR4 banks; each bank is shared by
 * `chipsPerRank` chips in lockstep, and every chip contributes one DPU
 * (PIM core) per bank. A 64 B burst to a bank therefore carries 8 B of
 * payload to each of the bank's 8 DPUs, which is why host data must be
 * byte-transposed before transfer (paper Fig. 3).
 */

#ifndef PIMMMU_PIM_PIM_GEOMETRY_HH
#define PIMMMU_PIM_PIM_GEOMETRY_HH

#include "common/logging.hh"
#include "mapping/geometry.hh"

namespace pimmmu {
namespace device {

/** Shape of the PIM subsystem. */
struct PimGeometry
{
    /** Bank-level shape as seen by the memory controller. */
    mapping::DramGeometry banks;

    /** Chips per rank == DPUs per bank (x8 DIMM => 8). */
    unsigned chipsPerRank = 8;

    unsigned
    numBanks() const
    {
        return banks.channels * banks.ranksPerChannel *
               banks.banksPerRank();
    }

    unsigned numDpus() const { return numBanks() * chipsPerRank; }

    /** MRAM capacity of one DPU: its byte-lane slice of a bank. */
    std::uint64_t
    mramBytesPerDpu() const
    {
        return banks.bankBytes() / chipsPerRank;
    }

    /** DPU id decomposition: id = bank * chipsPerRank + chip. */
    unsigned dpuBank(unsigned dpuId) const { return dpuId / chipsPerRank; }
    unsigned dpuChip(unsigned dpuId) const { return dpuId % chipsPerRank; }

    unsigned
    dpuId(unsigned bank, unsigned chip) const
    {
        return bank * chipsPerRank + chip;
    }

    /**
     * Device coordinate (row/column zero) of a flat bank index. The
     * flat ordering matches DramCoord::globalBankIndex: channel outer,
     * then rank, bank group, bank.
     */
    mapping::DramCoord
    bankCoord(unsigned bankIdx) const
    {
        PIMMMU_ASSERT(bankIdx < numBanks(), "bank index out of range");
        mapping::DramCoord c;
        const unsigned perChannel =
            banks.ranksPerChannel * banks.banksPerRank();
        c.ch = bankIdx / perChannel;
        unsigned rest = bankIdx % perChannel;
        c.ra = rest / banks.banksPerRank();
        rest %= banks.banksPerRank();
        c.bg = rest / banks.banksPerGroup;
        c.bk = rest % banks.banksPerGroup;
        return c;
    }

    /**
     * Byte offset of a bank's contiguous slab within the PIM region
     * under the locality-centric (ChRaBgBkRoCo) mapping.
     */
    Addr
    bankRegionOffset(unsigned bankIdx) const
    {
        return Addr{bankIdx} * banks.bankBytes();
    }

    /** Paper Table I shape: 4 channels x 2 ranks, 512 DPUs. */
    static PimGeometry
    paperTable1()
    {
        PimGeometry g;
        g.banks.channels = 4;
        g.banks.ranksPerChannel = 2;
        g.banks.bankGroups = 4;
        g.banks.banksPerGroup = 2; // 8 banks/rank, one per UPMEM chip bank
        g.banks.rows = 16384;
        g.banks.columns = 128; // 8 KiB rows
        g.banks.lineBytes = 64;
        g.chipsPerRank = 8;
        return g;
    }
};

} // namespace device
} // namespace pimmmu

#endif // PIMMMU_PIM_PIM_GEOMETRY_HH

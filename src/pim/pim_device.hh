/**
 * @file
 * The PIM device: all DPUs of the PIM subsystem plus helpers to
 * translate between DPU ids, banks, and PIM-region physical addresses.
 */

#ifndef PIMMMU_PIM_PIM_DEVICE_HH
#define PIMMMU_PIM_PIM_DEVICE_HH

#include <functional>
#include <vector>

#include "common/serialize.hh"
#include "common/stats.hh"
#include "pim/dpu.hh"
#include "pim/dpu_interpreter.hh"
#include "pim/kernel_model.hh"
#include "pim/pim_geometry.hh"
#include "pim/transpose.hh"

namespace pimmmu {
namespace device {

/**
 * Container for every DPU in the system. The timing plane schedules at
 * bank granularity; this class is the functional plane (real MRAM
 * contents, real kernel results).
 */
class PimDevice
{
  public:
    explicit PimDevice(const PimGeometry &geometry);

    ~PimDevice();

    const PimGeometry &geometry() const { return geom_; }
    stats::Group &stats() { return stats_; }

    /**
     * Checkpoint every DPU's touched MRAM (trailing zero bytes
     * trimmed — untouched MRAM reads as zero, so the restored device
     * is byte- and fingerprint-identical), the launch id counter and
     * stats.
     */
    void saveState(serialize::ByteSink &out) const;

    /** Inverse of saveState. @return false on a malformed payload. */
    bool restoreState(serialize::ByteSource &in);

    Dpu &dpu(unsigned id) { return dpus_[id]; }
    const Dpu &dpu(unsigned id) const { return dpus_[id]; }

    unsigned numDpus() const { return geom_.numDpus(); }
    unsigned numBanks() const { return geom_.numBanks(); }

    /**
     * Wire-line offset bookkeeping: the 8 B word at MRAM offset
     * 8*w of any DPU in bank b travels in the 64 B wire line at PIM
     * region offset bankRegionOffset(b) + 64*w.
     */
    Addr
    wireLineOffset(unsigned bank, Addr mramWordOffset) const
    {
        return geom_.bankRegionOffset(bank) +
               (mramWordOffset / kWordBytes) * kBlockBytes;
    }

    /**
     * Run a kernel functionally on every listed DPU and return the
     * modeled execution time (SPMD: all DPUs run the same program, the
     * slowest one gates completion; the model assumes balanced work).
     *
     * @param dpuIds      participating DPUs
     * @param kernel      callable invoked as kernel(dpu, indexInList)
     * @param model       analytic timing model for this kernel
     * @param bytesPerDpu input bytes each DPU touches (for the model)
     */
    Tick launch(const std::vector<unsigned> &dpuIds,
                const std::function<void(Dpu &, unsigned)> &kernel,
                const KernelModel &model, std::uint64_t bytesPerDpu);

    /**
     * Run a mini-ISA DPU program (SPMD) on every listed DPU via the
     * cycle-counting interpreter. Execution time is derived from the
     * slowest DPU's instruction/DMA cycle count rather than an
     * analytic model.
     *
     * @param argsPerDpu per-DPU kernel arguments loaded into r1..rN
     *                   (one vector per DPU, or a single vector
     *                   broadcast to all)
     * @return modeled wall time of the launch
     */
    Tick launchProgram(const std::vector<unsigned> &dpuIds,
                       const DpuProgram &program,
                       const std::vector<std::vector<std::int64_t>>
                           &argsPerDpu,
                       const DpuCoreConfig &coreConfig =
                           DpuCoreConfig{});

  private:
    /** Record one launch in stats and on the kernel timeline track. */
    Tick recordLaunch(const char *what, std::size_t dpus, Tick execPs);

    PimGeometry geom_;
    std::vector<Dpu> dpus_;
    std::uint64_t nextLaunchId_ = 0;
    unsigned timelineTrack_ = 0;
    stats::Group stats_;
};

} // namespace device
} // namespace pimmmu

#endif // PIMMMU_PIM_PIM_DEVICE_HH

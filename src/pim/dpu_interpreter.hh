/**
 * @file
 * Cycle-counting interpreter for the mini DPU ISA.
 *
 * Models the UPMEM DPU execution style: up to 24 tasklets issue
 * instructions round-robin into a single in-order pipeline (one
 * instruction per DPU cycle across all runnable tasklets), each
 * tasklet has a register file and a WRAM slice, and MRAM is reached
 * only through blocking DMA transfers with per-byte cost.
 */

#ifndef PIMMMU_PIM_DPU_INTERPRETER_HH
#define PIMMMU_PIM_DPU_INTERPRETER_HH

#include <array>
#include <cstdint>
#include <vector>

#include "pim/dpu.hh"
#include "pim/dpu_isa.hh"

namespace pimmmu {
namespace device {

/** Interpreter tunables (UPMEM-like defaults). */
struct DpuCoreConfig
{
    unsigned tasklets = 16;          //!< runnable hardware threads
    std::uint64_t wramBytes = 64 * kKiB;
    double clockMhz = 350.0;
    /** DMA engine: setup cycles plus cycles per 8 B beat. */
    unsigned dmaSetupCycles = 16;
    unsigned dmaCyclesPerWord = 1;
    /** Pipeline depth: a tasklet re-issues at most every N cycles. */
    unsigned revolverDepth = 11;
    /** Safety valve against runaway programs. */
    std::uint64_t maxCycles = 1ull << 32;
};

/** Result of executing one program on one DPU. */
struct DpuRunResult
{
    Cycle cycles = 0;
    std::uint64_t instructions = 0;
    std::uint64_t dmaBytes = 0;

    Tick
    timePs(double clockMhz) const
    {
        return static_cast<Tick>(static_cast<double>(cycles) /
                                 clockMhz * 1e6);
    }
};

/**
 * Executes a DpuProgram against a Dpu's MRAM. All tasklets start at
 * instruction 0 with r0 = 0; programs partition work using `tid` /
 * `ntask`. WRAM is shared across tasklets (as on hardware).
 */
class DpuInterpreter
{
  public:
    explicit DpuInterpreter(const DpuCoreConfig &config = DpuCoreConfig{})
        : config_(config)
    {
    }

    const DpuCoreConfig &config() const { return config_; }

    /**
     * Run @p program to completion (every tasklet halts).
     * @param dpu  the DPU whose MRAM the program reads/writes
     * @param args initial values for r1..rN of every tasklet
     *             (kernel arguments, e.g. element counts and offsets)
     */
    DpuRunResult run(Dpu &dpu, const DpuProgram &program,
                     const std::vector<std::int64_t> &args = {});

  private:
    struct Tasklet
    {
        std::array<std::int64_t, 24> regs{};
        std::uint64_t pc = 0;
        bool halted = false;
        Cycle nextIssue = 0; //!< pipeline revolver constraint
    };

    DpuCoreConfig config_;
};

} // namespace device
} // namespace pimmmu

#endif // PIMMMU_PIM_DPU_INTERPRETER_HH

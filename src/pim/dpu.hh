/**
 * @file
 * Functional model of one DPU (bank-level PIM core) and its MRAM.
 */

#ifndef PIMMMU_PIM_DPU_HH
#define PIMMMU_PIM_DPU_HH

#include <cstdint>
#include <cstring>
#include <vector>

#include "common/logging.hh"
#include "common/types.hh"

namespace pimmmu {
namespace device {

/**
 * One PIM core with its private MRAM. MRAM storage grows on demand up
 * to the configured capacity; kernels are C++ callables that read and
 * write the MRAM through this interface.
 */
class Dpu
{
  public:
    Dpu(unsigned id, std::uint64_t mramCapacity)
        : id_(id), capacity_(mramCapacity)
    {
    }

    unsigned id() const { return id_; }
    std::uint64_t mramCapacity() const { return capacity_; }

    /** Bytes backed by real storage so far (rest reads as zero). */
    std::uint64_t mramTouchedBytes() const { return mram_.size(); }

    /** Direct view of the touched MRAM prefix (fingerprinting). */
    const std::uint8_t *mramData() const { return mram_.data(); }

    void
    mramWrite(Addr offset, const void *src, std::size_t bytes)
    {
        ensure(offset + bytes);
        std::memcpy(mram_.data() + offset, src, bytes);
    }

    void
    mramRead(Addr offset, void *dst, std::size_t bytes) const
    {
        PIMMMU_ASSERT(offset + bytes <= capacity_,
                      "MRAM read out of bounds");
        if (offset + bytes <= mram_.size()) {
            std::memcpy(dst, mram_.data() + offset, bytes);
            return;
        }
        // Partially (or fully) untouched MRAM reads as zero.
        std::memset(dst, 0, bytes);
        if (offset < mram_.size()) {
            std::memcpy(dst, mram_.data() + offset,
                        mram_.size() - offset);
        }
    }

    template <typename T>
    T
    load(Addr offset) const
    {
        T value;
        mramRead(offset, &value, sizeof(T));
        return value;
    }

    template <typename T>
    void
    store(Addr offset, const T &value)
    {
        mramWrite(offset, &value, sizeof(T));
    }

  private:
    void
    ensure(std::uint64_t bytes)
    {
        PIMMMU_ASSERT(bytes <= capacity_, "MRAM write beyond capacity (",
                      bytes, " > ", capacity_, ")");
        if (mram_.size() < bytes)
            mram_.resize(bytes, 0);
    }

    unsigned id_;
    std::uint64_t capacity_;
    std::vector<std::uint8_t> mram_;
};

} // namespace device
} // namespace pimmmu

#endif // PIMMMU_PIM_DPU_HH

/**
 * @file
 * Shared host<->PIM transfer plumbing used by both the baseline UPMEM
 * runtime and the PIM-MMU runtime: validation + grouping of per-DPU
 * entries into whole banks, and the functional (data) copy through the
 * wire format (gather -> transpose -> per-chip delivery).
 */

#ifndef PIMMMU_PIM_HOST_TRANSFER_HH
#define PIMMMU_PIM_HOST_TRANSFER_HH

#include <array>
#include <vector>

#include "dram/backing_store.hh"
#include "pim/pim_device.hh"
#include "resilience/status.hh"
#include "resilience/xfer_guard.hh"

namespace pimmmu {
namespace device {

/** Per-DPU transfer entries grouped into whole banks. */
struct BankGrouping
{
    struct Bank
    {
        unsigned bankIdx = 0;
        /** Host array base per chip lane. */
        std::array<Addr, 8> hostBase{};
        /** DPU id per chip lane. */
        std::array<unsigned, 8> dpuId{};
    };

    std::vector<Bank> banks;
};

/**
 * Validate and group a per-DPU transfer list.
 *
 * Requirements (fatal() on violation): dpuIds and hostAddrs have equal
 * non-zero length; ids are unique and in range; every touched bank is
 * fully covered (all 8 chips); host arrays are 64-byte aligned;
 * @p bytesPerDpu is a non-zero multiple of 64; @p heapOffset is 8-byte
 * aligned and the transfer fits in MRAM.
 */
BankGrouping groupByBank(const PimGeometry &geometry,
                         const std::vector<unsigned> &dpuIds,
                         const std::vector<Addr> &hostAddrs,
                         std::uint64_t bytesPerDpu, Addr heapOffset);

/**
 * Validating variant of groupByBank: reports violations as a
 * structured Status instead of fatal()ing, so runtimes can reject a
 * bad descriptor and keep the machine up. On success @p out holds the
 * grouping.
 */
resilience::Status
groupByBankChecked(const PimGeometry &geometry,
                   const std::vector<unsigned> &dpuIds,
                   const std::vector<Addr> &hostAddrs,
                   std::uint64_t bytesPerDpu, Addr heapOffset,
                   BankGrouping &out);

/**
 * Apply the functional semantics of a transfer: move @p bytesPerDpu
 * bytes between each DPU's host array (in @p store) and its MRAM at
 * @p heapOffset, routing every word through the 8x8 wire-block
 * transpose exactly as the hardware does.
 *
 * With a @p guard, every delivered wire word additionally crosses the
 * modeled link: SEC-DED ECC encode/decode around the injected
 * `ecc.flip_*` fault sites (with bounded word retransmission for
 * uncorrectable errors), past-ECC buffer corruption via
 * `xfer.corrupt_data`, and running end-to-end CRCs over intended vs
 * delivered payload. Without a guard the behavior (including the
 * legacy silent `xfer.corrupt_data` hook) is unchanged.
 */
void functionalTransfer(dram::BackingStore &store, PimDevice &pim,
                        bool toPim, const BankGrouping &grouping,
                        std::uint64_t bytesPerDpu, Addr heapOffset,
                        resilience::XferGuard *guard = nullptr);

/**
 * Guarded DRAM->DRAM copy of @p bytes (a multiple of 8) from @p src to
 * @p dst, carrying every 8 B word across the same modeled link as
 * functionalTransfer: ECC encode/decode around the `ecc.flip_*` fault
 * sites with bounded word retransmission, `xfer.corrupt_data` past-ECC
 * corruption, and running end-to-end CRCs. Lets System::runMemcpy give
 * the DCE-memcpy path the same integrity guarantees as the scatter
 * path.
 */
void guardedCopy(dram::BackingStore &store, Addr src, Addr dst,
                 std::uint64_t bytes, resilience::XferGuard &guard);

/**
 * Read @p bytes (a multiple of 8) of one DPU's MRAM at @p offset back
 * across the modeled link, accumulating ECC/CRC evidence in @p guard
 * without storing the data anywhere. Used by checked kernel launches
 * to verify the result window a kernel left in MRAM actually survives
 * the readback path (guard.dataOk() == the readback was clean).
 */
void verifyMramReadback(PimDevice &pim, unsigned dpuId, Addr offset,
                        std::uint64_t bytes,
                        resilience::XferGuard &guard);

} // namespace device
} // namespace pimmmu

#endif // PIMMMU_PIM_HOST_TRANSFER_HH

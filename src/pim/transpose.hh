/**
 * @file
 * The 8x8 byte transpose applied to DRAM<->PIM transfer data
 * (paper Fig. 3 and the DCE preprocessing unit, section IV-C).
 *
 * A x8 DIMM byte-interleaves every 8-byte word across its 8 chips, so a
 * DPU (which lives in one chip) would only see one byte of each word.
 * Transposing each 64 B block before the transfer makes wire word j
 * carry the bytes that chip j receives, i.e. one full 8 B data word per
 * DPU per block.
 */

#ifndef PIMMMU_PIM_TRANSPOSE_HH
#define PIMMMU_PIM_TRANSPOSE_HH

#include <cstdint>

namespace pimmmu {
namespace device {

constexpr unsigned kWordBytes = 8;
constexpr unsigned kBlockWords = 8;
constexpr unsigned kBlockBytes = kWordBytes * kBlockWords;

/**
 * Transpose one 64 B block viewed as an 8x8 byte matrix:
 * out[c * 8 + w] = in[w * 8 + c]. The operation is an involution.
 * @p in and @p out must not alias.
 */
void transpose8x8(const std::uint8_t *in, std::uint8_t *out);

/**
 * Pack one wire block for a bank: word lane @p c of the output block is
 * the 8 B word destined for the DPU in chip @p c.
 * Equivalent to building the matrix whose row c is words[c], then
 * transposing it so that chip interleaving delivers row c to chip c.
 *
 * @param words 8 pointers, each to an 8 B source word (one per chip)
 * @param out   64 B wire block
 */
void packWireBlock(const std::uint8_t *const words[kBlockWords],
                   std::uint8_t *out);

/**
 * Unpack one wire block: extract the 8 B word belonging to chip
 * @p chip from a 64 B wire block.
 */
void unpackWireWord(const std::uint8_t *block, unsigned chip,
                    std::uint8_t *wordOut);

} // namespace device
} // namespace pimmmu

#endif // PIMMMU_PIM_TRANSPOSE_HH

/**
 * @file
 * A miniature DPU instruction set, modeled after the UPMEM DPU's
 * character: a scalar RISC core with many hardware threads (tasklets),
 * a small fast WRAM, and DMA transfers to/from the large MRAM.
 *
 * Programs can be built directly as instruction vectors or assembled
 * from text (see DpuAssembler). The interpreter (dpu_interpreter.hh)
 * executes them functionally and reports cycle counts from which
 * kernel time is derived — replacing the purely analytic kernel model
 * for workloads expressed as DPU programs.
 */

#ifndef PIMMMU_PIM_DPU_ISA_HH
#define PIMMMU_PIM_DPU_ISA_HH

#include <cstdint>
#include <string>
#include <vector>

namespace pimmmu {
namespace device {

/** Opcodes of the mini-ISA. */
enum class Op : std::uint8_t
{
    Ldi,   //!< rd = imm
    Mov,   //!< rd = ra
    Add,   //!< rd = ra + rb
    Addi,  //!< rd = ra + imm
    Sub,   //!< rd = ra - rb
    Mul,   //!< rd = ra * rb
    And,   //!< rd = ra & rb
    Or,    //!< rd = ra | rb
    Xor,   //!< rd = ra ^ rb
    Shl,   //!< rd = ra << imm
    Shr,   //!< rd = ra >> imm (logical)
    Lw,    //!< rd = *(int32*)(wram + ra + imm), sign-extended
    Ld,    //!< rd = *(int64*)(wram + ra + imm)
    Sw,    //!< *(int32*)(wram + ra + imm) = rb
    Sd,    //!< *(int64*)(wram + ra + imm) = rb
    Mrd,   //!< DMA: wram[ra] <- mram[rb], rc bytes (8B aligned)
    Mwr,   //!< DMA: mram[rb] <- wram[ra], rc bytes (8B aligned)
    Beq,   //!< if (ra == rb) goto target
    Bne,   //!< if (ra != rb) goto target
    Blt,   //!< if (ra <  rb) goto target (signed)
    Bge,   //!< if (ra >= rb) goto target (signed)
    Jmp,   //!< goto target
    Tid,   //!< rd = tasklet id
    Ntask, //!< rd = number of tasklets
    Halt   //!< stop this tasklet
};

/** One decoded instruction. */
struct Instr
{
    Op op = Op::Halt;
    std::uint8_t rd = 0;
    std::uint8_t ra = 0;
    std::uint8_t rb = 0;
    std::uint8_t rc = 0;      //!< DMA byte-count register
    std::int64_t imm = 0;     //!< immediate / branch target
};

/** An executable DPU program. */
struct DpuProgram
{
    std::vector<Instr> code;

    std::size_t size() const { return code.size(); }
};

/**
 * Two-pass text assembler for the mini-ISA.
 *
 * Syntax (one instruction per line, ';' or '#' comments):
 *   loop:                 ; label
 *     ldi   r1, 100
 *     add   r2, r1, r3
 *     addi  r2, r2, -1
 *     lw    r4, r2, 8     ; rd, base, offset
 *     mrd   r0, r5, r6    ; wram base, mram addr, byte count
 *     blt   r2, r1, loop
 *     halt
 */
class DpuAssembler
{
  public:
    /** Assemble @p source; fatal() with line info on syntax errors. */
    static DpuProgram assemble(const std::string &source);
};

/** Pretty-print one instruction (debugging / tests). */
std::string disassemble(const Instr &instr);

} // namespace device
} // namespace pimmmu

#endif // PIMMMU_PIM_DPU_ISA_HH

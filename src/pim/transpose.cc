#include "pim/transpose.hh"

namespace pimmmu {
namespace device {

void
transpose8x8(const std::uint8_t *in, std::uint8_t *out)
{
    for (unsigned w = 0; w < kBlockWords; ++w) {
        for (unsigned c = 0; c < kWordBytes; ++c)
            out[c * kBlockWords + w] = in[w * kWordBytes + c];
    }
}

void
packWireBlock(const std::uint8_t *const words[kBlockWords],
              std::uint8_t *out)
{
    // Row c of the logical matrix is the word for chip c; the wire block
    // is the transpose so that byte-interleaving across chips puts row c
    // back together inside chip c.
    for (unsigned c = 0; c < kBlockWords; ++c) {
        for (unsigned b = 0; b < kWordBytes; ++b)
            out[b * kWordBytes + c] = words[c][b];
    }
}

void
unpackWireWord(const std::uint8_t *block, unsigned chip,
               std::uint8_t *wordOut)
{
    for (unsigned b = 0; b < kWordBytes; ++b)
        wordOut[b] = block[b * kWordBytes + chip];
}

} // namespace device
} // namespace pimmmu

#include "pim/host_transfer.hh"

#include <map>

#include "common/trace.hh"
#include "pim/transpose.hh"
#include "testing/fault_injection.hh"

namespace pimmmu {
namespace device {

BankGrouping
groupByBank(const PimGeometry &geometry,
            const std::vector<unsigned> &dpuIds,
            const std::vector<Addr> &hostAddrs,
            std::uint64_t bytesPerDpu, Addr heapOffset)
{
    if (dpuIds.empty())
        fatal("transfer lists no PIM cores");
    if (dpuIds.size() != hostAddrs.size())
        fatal("dpu id and host address arrays differ in length");
    if (bytesPerDpu == 0 || bytesPerDpu % 64 != 0)
        fatal("bytesPerDpu must be a non-zero multiple of 64");
    if (heapOffset % kWordBytes != 0)
        fatal("MRAM heap offset must be 8-byte aligned");
    if (heapOffset + bytesPerDpu > geometry.mramBytesPerDpu())
        fatal("transfer exceeds MRAM capacity");

    std::map<unsigned, BankGrouping::Bank> banks;
    std::map<unsigned, unsigned> chipsSeen;
    for (std::size_t i = 0; i < dpuIds.size(); ++i) {
        const unsigned dpu = dpuIds[i];
        if (dpu >= geometry.numDpus())
            fatal("PIM core id ", dpu, " out of range");
        if (hostAddrs[i] % 64 != 0)
            fatal("host arrays must be 64-byte aligned");
        const unsigned bankIdx = geometry.dpuBank(dpu);
        const unsigned chip = geometry.dpuChip(dpu);
        if (chipsSeen[bankIdx] & (1u << chip))
            fatal("PIM core id ", dpu, " listed twice");
        chipsSeen[bankIdx] |= 1u << chip;
        BankGrouping::Bank &bank = banks[bankIdx];
        bank.bankIdx = bankIdx;
        bank.hostBase[chip] = hostAddrs[i];
        bank.dpuId[chip] = dpu;
    }

    BankGrouping grouping;
    grouping.banks.reserve(banks.size());
    for (auto &kv : banks) {
        if (chipsSeen[kv.first] != 0xffu) {
            fatal("bank ", kv.first,
                  " is only partially covered; transfers must address "
                  "all 8 chips of each touched bank");
        }
        grouping.banks.push_back(kv.second);
    }
    PIMMMU_TRACE_LOG(trace::Category::Xfer, trace::now(),
                     "groupByBank: " << dpuIds.size()
                                     << " PIM cores -> "
                                     << grouping.banks.size()
                                     << " whole banks, " << bytesPerDpu
                                     << " B/core at heap+"
                                     << heapOffset);
    return grouping;
}

void
functionalTransfer(dram::BackingStore &store, PimDevice &pim, bool toPim,
                   const BankGrouping &grouping,
                   std::uint64_t bytesPerDpu, Addr heapOffset)
{
    const std::uint64_t words = bytesPerDpu / kWordBytes;
    std::uint8_t wire[kBlockBytes];
    std::uint8_t word[kWordBytes];

    PIMMMU_TRACE_LOG(trace::Category::Xfer, trace::now(),
                     "functionalTransfer: "
                         << (toPim ? "DRAM->PIM" : "PIM->DRAM") << ", "
                         << grouping.banks.size() << " banks x "
                         << bytesPerDpu << " B/core");

    for (const auto &bank : grouping.banks) {
        for (std::uint64_t w = 0; w < words; ++w) {
            const Addr wordOff = w * kWordBytes;
            if (toPim) {
                std::uint8_t gathered[8][kWordBytes];
                const std::uint8_t *rows[8];
                for (unsigned c = 0; c < 8; ++c) {
                    store.read(bank.hostBase[c] + wordOff, gathered[c],
                               kWordBytes);
                    rows[c] = gathered[c];
                }
                packWireBlock(rows, wire);
                for (unsigned c = 0; c < 8; ++c) {
                    unpackWireWord(wire, c, word);
                    if (testing::fault::fire("xfer.corrupt_data"))
                        word[0] ^= 0x5a;
                    pim.dpu(bank.dpuId[c])
                        .mramWrite(heapOffset + wordOff, word,
                                   kWordBytes);
                }
            } else {
                std::uint8_t gathered[8][kWordBytes];
                const std::uint8_t *rows[8];
                for (unsigned c = 0; c < 8; ++c) {
                    pim.dpu(bank.dpuId[c])
                        .mramRead(heapOffset + wordOff, gathered[c],
                                  kWordBytes);
                    rows[c] = gathered[c];
                }
                // PIM->DRAM rides the wire in transposed form too; the
                // host-side (un)transpose restores per-DPU words.
                packWireBlock(rows, wire);
                for (unsigned c = 0; c < 8; ++c) {
                    unpackWireWord(wire, c, word);
                    if (testing::fault::fire("xfer.corrupt_data"))
                        word[0] ^= 0x5a;
                    store.write(bank.hostBase[c] + wordOff, word,
                                kWordBytes);
                }
            }
        }
    }
}

} // namespace device
} // namespace pimmmu

#include "pim/host_transfer.hh"

#include <cstring>
#include <map>
#include <sstream>

#include "common/trace.hh"
#include "pim/transpose.hh"
#include "resilience/ecc.hh"
#include "testing/fault_injection.hh"

namespace pimmmu {
namespace device {

namespace {

resilience::Status
malformed(const std::string &detail)
{
    return resilience::Status::failure(
        resilience::ErrorCode::MalformedDescriptor, detail);
}

} // namespace

resilience::Status
groupByBankChecked(const PimGeometry &geometry,
                   const std::vector<unsigned> &dpuIds,
                   const std::vector<Addr> &hostAddrs,
                   std::uint64_t bytesPerDpu, Addr heapOffset,
                   BankGrouping &out)
{
    using resilience::ErrorCode;
    using resilience::Status;

    if (dpuIds.empty()) {
        return Status::failure(ErrorCode::EmptyDescriptor,
                               "transfer lists no PIM cores");
    }
    if (dpuIds.size() != hostAddrs.size())
        return malformed("dpu id and host address arrays differ in length");
    if (bytesPerDpu == 0 || bytesPerDpu % 64 != 0)
        return malformed("bytesPerDpu must be a non-zero multiple of 64");
    if (heapOffset % kWordBytes != 0)
        return malformed("MRAM heap offset must be 8-byte aligned");
    if (heapOffset + bytesPerDpu > geometry.mramBytesPerDpu()) {
        return Status::failure(ErrorCode::DescriptorTooLarge,
                               "transfer exceeds MRAM capacity");
    }

    std::map<unsigned, BankGrouping::Bank> banks;
    std::map<unsigned, unsigned> chipsSeen;
    for (std::size_t i = 0; i < dpuIds.size(); ++i) {
        const unsigned dpu = dpuIds[i];
        if (dpu >= geometry.numDpus()) {
            std::ostringstream os;
            os << "PIM core id " << dpu << " out of range";
            return malformed(os.str());
        }
        if (hostAddrs[i] % 64 != 0)
            return malformed("host arrays must be 64-byte aligned");
        const unsigned bankIdx = geometry.dpuBank(dpu);
        const unsigned chip = geometry.dpuChip(dpu);
        if (chipsSeen[bankIdx] & (1u << chip)) {
            std::ostringstream os;
            os << "PIM core id " << dpu << " listed twice";
            return malformed(os.str());
        }
        chipsSeen[bankIdx] |= 1u << chip;
        BankGrouping::Bank &bank = banks[bankIdx];
        bank.bankIdx = bankIdx;
        bank.hostBase[chip] = hostAddrs[i];
        bank.dpuId[chip] = dpu;
    }

    BankGrouping grouping;
    grouping.banks.reserve(banks.size());
    for (auto &kv : banks) {
        if (chipsSeen[kv.first] != 0xffu) {
            std::ostringstream os;
            os << "bank " << kv.first
               << " is only partially covered; transfers must address "
                  "all 8 chips of each touched bank";
            return malformed(os.str());
        }
        grouping.banks.push_back(kv.second);
    }
    PIMMMU_TRACE_LOG(trace::Category::Xfer, trace::now(),
                     "groupByBank: " << dpuIds.size()
                                     << " PIM cores -> "
                                     << grouping.banks.size()
                                     << " whole banks, " << bytesPerDpu
                                     << " B/core at heap+"
                                     << heapOffset);
    out = std::move(grouping);
    return Status{};
}

BankGrouping
groupByBank(const PimGeometry &geometry,
            const std::vector<unsigned> &dpuIds,
            const std::vector<Addr> &hostAddrs,
            std::uint64_t bytesPerDpu, Addr heapOffset)
{
    BankGrouping grouping;
    const auto status = groupByBankChecked(
        geometry, dpuIds, hostAddrs, bytesPerDpu, heapOffset, grouping);
    if (!status.ok())
        fatal(status.message);
    return grouping;
}

namespace {

void
flipBit(std::uint8_t word[8], unsigned bit)
{
    word[bit / 8] ^= static_cast<std::uint8_t>(1u << (bit % 8));
}

/**
 * Carry one wire word across the modeled (faulty) link. @p clean is
 * the intended payload; @p word holds what actually arrives. With ECC
 * enabled, uncorrectable words are retransmitted up to the guard's
 * budget; a word that exhausts it is delivered corrupt and counted.
 */
void
transmitWord(const std::uint8_t clean[8], std::uint8_t word[8],
             resilience::XferGuard &g)
{
    using resilience::EccOutcome;
    namespace fault = testing::fault;

    const unsigned attempts = g.retryWords ? g.maxWordRetries + 1 : 1;
    bool delivered = false;
    for (unsigned attempt = 0; attempt < attempts && !delivered;
         ++attempt) {
        std::memcpy(word, clean, kWordBytes);
        std::uint8_t check =
            g.eccEnabled ? resilience::eccEncode(word) : 0;

        // Link noise. The flipped position walks with the word index
        // so campaigns exercise the whole codeword, deterministically.
        const auto bit = static_cast<unsigned>(g.wordIndex % 64);
        if (fault::fire("ecc.flip_single_bit"))
            flipBit(word, bit);
        if (fault::fire("ecc.flip_double_bit")) {
            flipBit(word, bit);
            flipBit(word, (bit + 31) % 64);
        }

        if (!g.eccEnabled) {
            delivered = true;
            break;
        }
        switch (resilience::eccDecode(word, check)) {
          case EccOutcome::Clean:
            delivered = true;
            break;
          case EccOutcome::CorrectedData:
          case EccOutcome::CorrectedCheck:
            ++g.eccCorrected;
            delivered = true;
            break;
          case EccOutcome::Uncorrectable:
            ++g.eccUncorrectable;
            if (attempt + 1 < attempts)
                ++g.wordRetries;
            break;
        }
    }
    if (!delivered)
        ++g.uncorrectedWords;

    // Buffer corruption past the ECC domain: only the end-to-end CRC
    // can see it.
    if (fault::fire("xfer.corrupt_data")) {
        word[0] ^= 0x5a;
        ++g.corruptWords;
    }

    g.crcSource = resilience::crc32cUpdate(g.crcSource, clean,
                                           kWordBytes);
    g.crcDelivered = resilience::crc32cUpdate(g.crcDelivered, word,
                                              kWordBytes);
    ++g.wordIndex;
}

} // namespace

void
guardedCopy(dram::BackingStore &store, Addr src, Addr dst,
            std::uint64_t bytes, resilience::XferGuard &guard)
{
    PIMMMU_ASSERT(bytes % kWordBytes == 0,
                  "guardedCopy size must be 8B-aligned");
    std::uint8_t clean[kWordBytes];
    std::uint8_t word[kWordBytes];
    for (std::uint64_t off = 0; off < bytes; off += kWordBytes) {
        store.read(src + off, clean, kWordBytes);
        transmitWord(clean, word, guard);
        store.write(dst + off, word, kWordBytes);
    }
}

void
verifyMramReadback(PimDevice &pim, unsigned dpuId, Addr offset,
                   std::uint64_t bytes, resilience::XferGuard &guard)
{
    PIMMMU_ASSERT(bytes % kWordBytes == 0,
                  "readback size must be 8B-aligned");
    std::uint8_t clean[kWordBytes];
    std::uint8_t word[kWordBytes];
    for (std::uint64_t off = 0; off < bytes; off += kWordBytes) {
        pim.dpu(dpuId).mramRead(offset + off, clean, kWordBytes);
        transmitWord(clean, word, guard);
    }
}

void
functionalTransfer(dram::BackingStore &store, PimDevice &pim, bool toPim,
                   const BankGrouping &grouping,
                   std::uint64_t bytesPerDpu, Addr heapOffset,
                   resilience::XferGuard *guard)
{
    const std::uint64_t words = bytesPerDpu / kWordBytes;
    std::uint8_t wire[kBlockBytes];
    std::uint8_t clean[kWordBytes];
    std::uint8_t word[kWordBytes];

    PIMMMU_TRACE_LOG(trace::Category::Xfer, trace::now(),
                     "functionalTransfer: "
                         << (toPim ? "DRAM->PIM" : "PIM->DRAM") << ", "
                         << grouping.banks.size() << " banks x "
                         << bytesPerDpu << " B/core");

    for (const auto &bank : grouping.banks) {
        for (std::uint64_t w = 0; w < words; ++w) {
            const Addr wordOff = w * kWordBytes;
            std::uint8_t gathered[8][kWordBytes];
            const std::uint8_t *rows[8];
            if (toPim) {
                for (unsigned c = 0; c < 8; ++c) {
                    store.read(bank.hostBase[c] + wordOff, gathered[c],
                               kWordBytes);
                    rows[c] = gathered[c];
                }
                packWireBlock(rows, wire);
                for (unsigned c = 0; c < 8; ++c) {
                    if (guard) {
                        unpackWireWord(wire, c, clean);
                        transmitWord(clean, word, *guard);
                    } else {
                        unpackWireWord(wire, c, word);
                        if (testing::fault::fire("xfer.corrupt_data"))
                            word[0] ^= 0x5a;
                    }
                    pim.dpu(bank.dpuId[c])
                        .mramWrite(heapOffset + wordOff, word,
                                   kWordBytes);
                }
            } else {
                for (unsigned c = 0; c < 8; ++c) {
                    pim.dpu(bank.dpuId[c])
                        .mramRead(heapOffset + wordOff, gathered[c],
                                  kWordBytes);
                    rows[c] = gathered[c];
                }
                // PIM->DRAM rides the wire in transposed form too; the
                // host-side (un)transpose restores per-DPU words.
                packWireBlock(rows, wire);
                for (unsigned c = 0; c < 8; ++c) {
                    if (guard) {
                        unpackWireWord(wire, c, clean);
                        transmitWord(clean, word, *guard);
                    } else {
                        unpackWireWord(wire, c, word);
                        if (testing::fault::fire("xfer.corrupt_data"))
                            word[0] ^= 0x5a;
                    }
                    store.write(bank.hostBase[c] + wordOff, word,
                                kWordBytes);
                }
            }
        }
    }
}

} // namespace device
} // namespace pimmmu

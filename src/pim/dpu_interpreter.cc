#include "pim/dpu_interpreter.hh"

#include <cstring>

#include "common/logging.hh"

namespace pimmmu {
namespace device {

DpuRunResult
DpuInterpreter::run(Dpu &dpu, const DpuProgram &program,
                    const std::vector<std::int64_t> &args)
{
    if (program.code.empty())
        fatal("empty DPU program");
    if (args.size() > 20)
        fatal("too many kernel arguments");

    std::vector<std::uint8_t> wram(config_.wramBytes, 0);
    std::vector<Tasklet> tasklets(config_.tasklets);
    for (unsigned t = 0; t < config_.tasklets; ++t) {
        for (std::size_t a = 0; a < args.size(); ++a)
            tasklets[t].regs[a + 1] = args[a];
    }

    auto wcheck = [&](std::int64_t addr, std::size_t bytes) {
        if (addr < 0 ||
            static_cast<std::uint64_t>(addr) + bytes > wram.size())
            fatal("WRAM access out of bounds: ", addr);
    };

    DpuRunResult result;
    Cycle cycle = 0;
    unsigned live = config_.tasklets;
    unsigned cursor = 0;

    while (live > 0) {
        if (cycle >= config_.maxCycles)
            fatal("DPU program exceeded the cycle limit (runaway?)");

        // Round-robin issue: find the next tasklet that can issue.
        bool issued = false;
        for (unsigned probe = 0; probe < config_.tasklets; ++probe) {
            Tasklet &tk = tasklets[(cursor + probe) % config_.tasklets];
            if (tk.halted || tk.nextIssue > cycle)
                continue;
            cursor = (cursor + probe + 1) % config_.tasklets;

            PIMMMU_ASSERT(tk.pc < program.code.size(),
                          "PC past end of program (missing halt?)");
            const Instr &in = program.code[tk.pc];
            ++tk.pc;
            ++result.instructions;
            tk.nextIssue = cycle + config_.revolverDepth;

            auto &r = tk.regs;
            switch (in.op) {
              case Op::Ldi:
                r[in.rd] = in.imm;
                break;
              case Op::Mov:
                r[in.rd] = r[in.ra];
                break;
              case Op::Add:
                r[in.rd] = r[in.ra] + r[in.rb];
                break;
              case Op::Addi:
                r[in.rd] = r[in.ra] + in.imm;
                break;
              case Op::Sub:
                r[in.rd] = r[in.ra] - r[in.rb];
                break;
              case Op::Mul:
                r[in.rd] = r[in.ra] * r[in.rb];
                break;
              case Op::And:
                r[in.rd] = r[in.ra] & r[in.rb];
                break;
              case Op::Or:
                r[in.rd] = r[in.ra] | r[in.rb];
                break;
              case Op::Xor:
                r[in.rd] = r[in.ra] ^ r[in.rb];
                break;
              case Op::Shl:
                r[in.rd] = r[in.ra] << (in.imm & 63);
                break;
              case Op::Shr:
                r[in.rd] = static_cast<std::int64_t>(
                    static_cast<std::uint64_t>(r[in.ra]) >>
                    (in.imm & 63));
                break;
              case Op::Lw: {
                const std::int64_t addr = r[in.ra] + in.imm;
                wcheck(addr, 4);
                std::int32_t v;
                std::memcpy(&v, wram.data() + addr, 4);
                r[in.rd] = v;
                break;
              }
              case Op::Ld: {
                const std::int64_t addr = r[in.ra] + in.imm;
                wcheck(addr, 8);
                std::memcpy(&r[in.rd], wram.data() + addr, 8);
                break;
              }
              case Op::Sw: {
                const std::int64_t addr = r[in.ra] + in.imm;
                wcheck(addr, 4);
                const auto v = static_cast<std::int32_t>(r[in.rb]);
                std::memcpy(wram.data() + addr, &v, 4);
                break;
              }
              case Op::Sd: {
                const std::int64_t addr = r[in.ra] + in.imm;
                wcheck(addr, 8);
                std::memcpy(wram.data() + addr, &r[in.rb], 8);
                break;
              }
              case Op::Mrd:
              case Op::Mwr: {
                const std::int64_t wramAddr = r[in.ra];
                const std::int64_t mramAddr = r[in.rb];
                const std::int64_t bytes = r[in.rc];
                if (bytes <= 0 || bytes % 8 != 0)
                    fatal("DMA size must be a positive multiple of 8");
                wcheck(wramAddr, static_cast<std::size_t>(bytes));
                if (mramAddr < 0)
                    fatal("negative MRAM address");
                if (in.op == Op::Mrd) {
                    dpu.mramRead(static_cast<Addr>(mramAddr),
                                 wram.data() + wramAddr,
                                 static_cast<std::size_t>(bytes));
                } else {
                    dpu.mramWrite(static_cast<Addr>(mramAddr),
                                  wram.data() + wramAddr,
                                  static_cast<std::size_t>(bytes));
                }
                result.dmaBytes += static_cast<std::uint64_t>(bytes);
                // The tasklet blocks for the DMA duration.
                tk.nextIssue =
                    cycle + config_.dmaSetupCycles +
                    config_.dmaCyclesPerWord *
                        static_cast<Cycle>(bytes / 8);
                break;
              }
              case Op::Beq:
                if (r[in.ra] == r[in.rb])
                    tk.pc = static_cast<std::uint64_t>(in.imm);
                break;
              case Op::Bne:
                if (r[in.ra] != r[in.rb])
                    tk.pc = static_cast<std::uint64_t>(in.imm);
                break;
              case Op::Blt:
                if (r[in.ra] < r[in.rb])
                    tk.pc = static_cast<std::uint64_t>(in.imm);
                break;
              case Op::Bge:
                if (r[in.ra] >= r[in.rb])
                    tk.pc = static_cast<std::uint64_t>(in.imm);
                break;
              case Op::Jmp:
                tk.pc = static_cast<std::uint64_t>(in.imm);
                break;
              case Op::Tid:
                r[in.rd] = static_cast<std::int64_t>(
                    (&tk - tasklets.data()));
                break;
              case Op::Ntask:
                r[in.rd] = config_.tasklets;
                break;
              case Op::Halt:
                tk.halted = true;
                --live;
                break;
              default:
                panic("bad opcode");
            }
            r[0] = 0; // r0 is hardwired to zero
            issued = true;
            break;
        }

        if (!issued && live > 0) {
            // Everyone is stalled on DMA: jump to the next issue time.
            Cycle next = ~Cycle{0};
            for (const auto &tk : tasklets) {
                if (!tk.halted)
                    next = std::min(next, tk.nextIssue);
            }
            cycle = next;
            continue;
        }
        ++cycle;
    }

    result.cycles = cycle;
    return result;
}

} // namespace device
} // namespace pimmmu

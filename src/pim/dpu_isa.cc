#include "pim/dpu_isa.hh"

#include <cctype>
#include <map>
#include <sstream>

#include "common/logging.hh"

namespace pimmmu {
namespace device {

namespace {

struct OpInfo
{
    Op op;
    /** Operand pattern: r = register, i = immediate, t = branch
     *  target (label or number). */
    const char *operands;
};

const std::map<std::string, OpInfo> kOps = {
    {"ldi", {Op::Ldi, "ri"}},   {"mov", {Op::Mov, "rr"}},
    {"add", {Op::Add, "rrr"}},  {"addi", {Op::Addi, "rri"}},
    {"sub", {Op::Sub, "rrr"}},  {"mul", {Op::Mul, "rrr"}},
    {"and", {Op::And, "rrr"}},  {"or", {Op::Or, "rrr"}},
    {"xor", {Op::Xor, "rrr"}},  {"shl", {Op::Shl, "rri"}},
    {"shr", {Op::Shr, "rri"}},  {"lw", {Op::Lw, "rri"}},
    {"ld", {Op::Ld, "rri"}},    {"sw", {Op::Sw, "rri*"}},
    {"sd", {Op::Sd, "rri*"}},   {"mrd", {Op::Mrd, "rrr"}},
    {"mwr", {Op::Mwr, "rrr"}},  {"beq", {Op::Beq, "rrt"}},
    {"bne", {Op::Bne, "rrt"}},  {"blt", {Op::Blt, "rrt"}},
    {"bge", {Op::Bge, "rrt"}},  {"jmp", {Op::Jmp, "t"}},
    {"tid", {Op::Tid, "r"}},    {"ntask", {Op::Ntask, "r"}},
    {"halt", {Op::Halt, ""}},
};

std::string
stripComment(const std::string &line)
{
    const auto pos = line.find_first_of(";#");
    return pos == std::string::npos ? line : line.substr(0, pos);
}

std::vector<std::string>
tokenize(const std::string &line)
{
    std::vector<std::string> tokens;
    std::string token;
    for (char ch : line) {
        if (std::isspace(static_cast<unsigned char>(ch)) || ch == ',') {
            if (!token.empty()) {
                tokens.push_back(token);
                token.clear();
            }
        } else {
            token += ch;
        }
    }
    if (!token.empty())
        tokens.push_back(token);
    return tokens;
}

std::uint8_t
parseReg(const std::string &token, int line)
{
    if (token.size() < 2 || (token[0] != 'r' && token[0] != 'R'))
        fatal("line ", line, ": expected register, got '", token, "'");
    const int n = std::atoi(token.c_str() + 1);
    if (n < 0 || n >= 24)
        fatal("line ", line, ": register out of range '", token, "'");
    return static_cast<std::uint8_t>(n);
}

std::int64_t
parseImm(const std::string &token, int line)
{
    char *end = nullptr;
    const std::int64_t value =
        std::strtoll(token.c_str(), &end, 0);
    if (end == token.c_str() || *end != '\0')
        fatal("line ", line, ": bad immediate '", token, "'");
    return value;
}

} // namespace

DpuProgram
DpuAssembler::assemble(const std::string &source)
{
    // Pass 1: collect labels.
    std::map<std::string, std::int64_t> labels;
    {
        std::istringstream in(source);
        std::string raw;
        std::int64_t pc = 0;
        int lineNo = 0;
        while (std::getline(in, raw)) {
            ++lineNo;
            auto tokens = tokenize(stripComment(raw));
            if (tokens.empty())
                continue;
            if (tokens[0].back() == ':') {
                const std::string label =
                    tokens[0].substr(0, tokens[0].size() - 1);
                if (labels.count(label))
                    fatal("line ", lineNo, ": duplicate label '",
                          label, "'");
                labels[label] = pc;
                tokens.erase(tokens.begin());
                if (tokens.empty())
                    continue;
            }
            ++pc;
        }
    }

    // Pass 2: encode.
    DpuProgram program;
    std::istringstream in(source);
    std::string raw;
    int lineNo = 0;
    while (std::getline(in, raw)) {
        ++lineNo;
        auto tokens = tokenize(stripComment(raw));
        if (tokens.empty())
            continue;
        if (tokens[0].back() == ':') {
            tokens.erase(tokens.begin());
            if (tokens.empty())
                continue;
        }
        std::string mnemonic = tokens[0];
        for (auto &c : mnemonic)
            c = static_cast<char>(std::tolower(c));
        const auto it = kOps.find(mnemonic);
        if (it == kOps.end())
            fatal("line ", lineNo, ": unknown mnemonic '", mnemonic,
                  "'");
        const OpInfo &info = it->second;

        Instr instr;
        instr.op = info.op;
        // Operand pattern interpretation. "rri*" means (base, off,
        // src) store-style encoding: ra = base, imm = off, rb = src.
        const std::string pattern = info.operands;
        const bool storeStyle = pattern == "rri*";
        const std::size_t expected =
            storeStyle ? 3 : pattern.size();
        if (tokens.size() - 1 != expected) {
            fatal("line ", lineNo, ": '", mnemonic, "' expects ",
                  expected, " operands");
        }
        auto resolveTarget = [&](const std::string &token) {
            if (labels.count(token))
                return labels.at(token);
            return parseImm(token, lineNo);
        };

        if (storeStyle) {
            instr.ra = parseReg(tokens[1], lineNo); // base
            instr.imm = parseImm(tokens[2], lineNo);
            instr.rb = parseReg(tokens[3], lineNo); // value
        } else {
            unsigned regSlot = 0;
            for (std::size_t i = 0; i < pattern.size(); ++i) {
                const std::string &token = tokens[i + 1];
                switch (pattern[i]) {
                  case 'r': {
                    const std::uint8_t reg = parseReg(token, lineNo);
                    if (regSlot == 0)
                        instr.rd = reg;
                    else if (regSlot == 1)
                        instr.ra = reg;
                    else
                        instr.rb = reg;
                    ++regSlot;
                    break;
                  }
                  case 'i':
                    instr.imm = parseImm(token, lineNo);
                    break;
                  case 't':
                    instr.imm = resolveTarget(token);
                    break;
                  default:
                    panic("bad operand pattern");
                }
            }
            // DMA ops take three registers: wram, mram, count.
            if (instr.op == Op::Mrd || instr.op == Op::Mwr) {
                instr.rc = instr.rb;
                instr.rb = instr.ra;
                instr.ra = instr.rd;
                instr.rd = 0;
            }
            // Branches: rd/ra hold the two compared registers.
            if (instr.op == Op::Beq || instr.op == Op::Bne ||
                instr.op == Op::Blt || instr.op == Op::Bge) {
                instr.rb = instr.ra;
                instr.ra = instr.rd;
                instr.rd = 0;
            }
        }
        program.code.push_back(instr);
    }
    return program;
}

std::string
disassemble(const Instr &instr)
{
    std::ostringstream os;
    for (const auto &kv : kOps) {
        if (kv.second.op == instr.op) {
            os << kv.first;
            break;
        }
    }
    os << " rd=" << int{instr.rd} << " ra=" << int{instr.ra}
       << " rb=" << int{instr.rb} << " rc=" << int{instr.rc}
       << " imm=" << instr.imm;
    return os.str();
}

} // namespace device
} // namespace pimmmu

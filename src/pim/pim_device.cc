#include "pim/pim_device.hh"

namespace pimmmu {
namespace device {

PimDevice::PimDevice(const PimGeometry &geometry) : geom_(geometry)
{
    if (!geom_.banks.valid())
        fatal("PIM bank geometry dimensions must be powers of two");
    if (!isPowerOfTwo(geom_.chipsPerRank))
        fatal("chipsPerRank must be a power of two");
    dpus_.reserve(geom_.numDpus());
    for (unsigned id = 0; id < geom_.numDpus(); ++id)
        dpus_.emplace_back(id, geom_.mramBytesPerDpu());
}

Tick
PimDevice::launch(const std::vector<unsigned> &dpuIds,
                  const std::function<void(Dpu &, unsigned)> &kernel,
                  const KernelModel &model, std::uint64_t bytesPerDpu)
{
    unsigned index = 0;
    for (unsigned id : dpuIds) {
        PIMMMU_ASSERT(id < numDpus(), "DPU id out of range");
        kernel(dpus_[id], index++);
    }
    return model.execTimePs(bytesPerDpu);
}

Tick
PimDevice::launchProgram(
    const std::vector<unsigned> &dpuIds, const DpuProgram &program,
    const std::vector<std::vector<std::int64_t>> &argsPerDpu,
    const DpuCoreConfig &coreConfig)
{
    if (argsPerDpu.size() > 1 && argsPerDpu.size() != dpuIds.size())
        fatal("argsPerDpu must be empty, one vector, or one per DPU");
    DpuInterpreter interpreter(coreConfig);
    Cycle worst = 0;
    for (std::size_t i = 0; i < dpuIds.size(); ++i) {
        const unsigned id = dpuIds[i];
        PIMMMU_ASSERT(id < numDpus(), "DPU id out of range");
        static const std::vector<std::int64_t> kNoArgs;
        const std::vector<std::int64_t> &args =
            argsPerDpu.empty()
                ? kNoArgs
                : argsPerDpu[argsPerDpu.size() == 1 ? 0 : i];
        const DpuRunResult r = interpreter.run(dpus_[id], program, args);
        worst = std::max(worst, r.cycles);
    }
    return DpuRunResult{worst, 0, 0}.timePs(coreConfig.clockMhz);
}

} // namespace device
} // namespace pimmmu

#include "pim/pim_device.hh"

#include "common/stats_serialize.hh"

#include "common/trace.hh"
#include "telemetry/stats_registry.hh"
#include "telemetry/timeline.hh"

namespace pimmmu {
namespace device {

PimDevice::PimDevice(const PimGeometry &geometry)
    : geom_(geometry), stats_("pim")
{
    if (!geom_.banks.valid())
        fatal("PIM bank geometry dimensions must be powers of two");
    if (!isPowerOfTwo(geom_.chipsPerRank))
        fatal("chipsPerRank must be a power of two");
    dpus_.reserve(geom_.numDpus());
    for (unsigned id = 0; id < geom_.numDpus(); ++id)
        dpus_.emplace_back(id, geom_.mramBytesPerDpu());
    timelineTrack_ = telemetry::Timeline::global().track("pim.kernel");
    telemetry::StatsRegistry::global().add(stats_);
}

PimDevice::~PimDevice()
{
    telemetry::StatsRegistry::global().remove(stats_);
}

Tick
PimDevice::recordLaunch(const char *what, std::size_t dpus, Tick execPs)
{
    const Tick startedAt = trace::now();
    stats_.counter("kernel_launches") += 1;
    stats_.average("kernel_us").sample(
        static_cast<double>(execPs) / 1e6);
    PIMMMU_TRACE_LOG(trace::Category::Pim, startedAt,
                     what << ": " << dpus << " DPUs, "
                          << execPs / 1000 << " ns modeled");
    auto &tl = telemetry::Timeline::global();
    if (tl.enabled())
        tl.span(timelineTrack_,
                std::string(what) + "#" +
                    std::to_string(nextLaunchId_),
                startedAt, startedAt + execPs);
    ++nextLaunchId_;
    return execPs;
}

Tick
PimDevice::launch(const std::vector<unsigned> &dpuIds,
                  const std::function<void(Dpu &, unsigned)> &kernel,
                  const KernelModel &model, std::uint64_t bytesPerDpu)
{
    unsigned index = 0;
    for (unsigned id : dpuIds) {
        PIMMMU_ASSERT(id < numDpus(), "DPU id out of range");
        kernel(dpus_[id], index++);
    }
    return recordLaunch("kernel", dpuIds.size(),
                        model.execTimePs(bytesPerDpu));
}

Tick
PimDevice::launchProgram(
    const std::vector<unsigned> &dpuIds, const DpuProgram &program,
    const std::vector<std::vector<std::int64_t>> &argsPerDpu,
    const DpuCoreConfig &coreConfig)
{
    if (argsPerDpu.size() > 1 && argsPerDpu.size() != dpuIds.size())
        fatal("argsPerDpu must be empty, one vector, or one per DPU");
    DpuInterpreter interpreter(coreConfig);
    Cycle worst = 0;
    for (std::size_t i = 0; i < dpuIds.size(); ++i) {
        const unsigned id = dpuIds[i];
        PIMMMU_ASSERT(id < numDpus(), "DPU id out of range");
        static const std::vector<std::int64_t> kNoArgs;
        const std::vector<std::int64_t> &args =
            argsPerDpu.empty()
                ? kNoArgs
                : argsPerDpu[argsPerDpu.size() == 1 ? 0 : i];
        const DpuRunResult r = interpreter.run(dpus_[id], program, args);
        worst = std::max(worst, r.cycles);
    }
    return recordLaunch(
        "program", dpuIds.size(),
        DpuRunResult{worst, 0, 0}.timePs(coreConfig.clockMhz));
}

void
PimDevice::saveState(serialize::ByteSink &out) const
{
    out.u64(dpus_.size());
    for (const Dpu &d : dpus_) {
        std::uint64_t touched = d.mramTouchedBytes();
        const std::uint8_t *data = d.mramData();
        while (touched > 0 && data[touched - 1] == 0)
            --touched;
        out.u64(touched);
        out.bytes(data, static_cast<std::size_t>(touched));
    }
    out.u64(nextLaunchId_);
    stats::saveGroup(out, stats_);
}

bool
PimDevice::restoreState(serialize::ByteSource &in)
{
    if (in.u64() != dpus_.size()) // geometry mismatch
        return false;
    std::vector<std::uint8_t> buf;
    for (Dpu &d : dpus_) {
        const std::uint64_t touched = in.u64();
        if (touched > d.mramCapacity() || touched > in.remaining())
            return false;
        buf.resize(static_cast<std::size_t>(touched));
        if (touched > 0) {
            if (!in.bytes(buf.data(), buf.size()))
                return false;
            d.mramWrite(0, buf.data(), buf.size());
        }
    }
    nextLaunchId_ = in.u64();
    return stats::restoreGroup(in, stats_);
}

} // namespace device
} // namespace pimmmu

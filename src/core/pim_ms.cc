#include "core/pim_ms.hh"

#include <algorithm>
#include <sstream>

#include "common/logging.hh"
#include "common/trace.hh"

namespace pimmmu {
namespace core {

std::vector<unsigned>
PimMs::algorithmOrder(const device::PimGeometry &geometry,
                      const std::vector<unsigned> &banks,
                      const std::vector<unsigned> &slots)
{
    // Algorithm 1 lines 29-37: for bk { for ra { for bg } } -- issuing
    // successive column commands to different bank groups first.
    std::vector<unsigned> order = slots;
    std::sort(order.begin(), order.end(), [&](unsigned a, unsigned b) {
        const auto ca = geometry.bankCoord(banks[a]);
        const auto cb = geometry.bankCoord(banks[b]);
        if (ca.bk != cb.bk)
            return ca.bk < cb.bk;
        if (ca.ra != cb.ra)
            return ca.ra < cb.ra;
        return ca.bg < cb.bg;
    });
    return order;
}

PimMs::PimMs(const device::PimGeometry &geometry,
             const std::vector<unsigned> &banks, Tick now)
{
    const unsigned channels = geometry.banks.channels;
    std::vector<std::vector<unsigned>> perChannel(channels);
    for (unsigned slot = 0; slot < banks.size(); ++slot) {
        const auto coord = geometry.bankCoord(banks[slot]);
        perChannel[coord.ch].push_back(slot);
    }

    channelSlots_.reserve(channels);
    for (unsigned ch = 0; ch < channels; ++ch) {
        channelSlots_.push_back(
            algorithmOrder(geometry, banks, perChannel[ch]));
    }
    // Drop channels with no work so round-robin never spins on them.
    channelSlots_.erase(
        std::remove_if(channelSlots_.begin(), channelSlots_.end(),
                       [](const auto &v) { return v.empty(); }),
        channelSlots_.end());
    if (channelSlots_.empty())
        fatal("PIM-MS built with no target banks");
    readCursor_.assign(channelSlots_.size(), 0);
    writeCursor_.assign(channelSlots_.size(), 0);

    PIMMMU_TRACE_LOG(trace::Category::Sched, now,
                     "pim-ms: " << banks.size() << " banks over "
                                << channelSlots_.size()
                                << " active channels");
    if (trace::enabled(trace::Category::Sched)) {
        for (std::size_t ch = 0; ch < channelSlots_.size(); ++ch) {
            std::ostringstream order;
            for (unsigned slot : channelSlots_[ch])
                order << " bk" << banks[slot];
            trace::emit(trace::Category::Sched, now,
                        "pim-ms issue order, channel slot " +
                            std::to_string(ch) + ":" + order.str());
        }
    }
}

} // namespace core
} // namespace pimmmu

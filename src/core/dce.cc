#include "core/dce.hh"

#include <algorithm>
#include <sstream>

#include "common/stats_serialize.hh"
#include "common/trace.hh"
#include "resilience/manager.hh"
#include "telemetry/attribution.hh"
#include "telemetry/stats_registry.hh"
#include "telemetry/timeline.hh"
#include "testing/fault_injection.hh"

namespace pimmmu {
namespace core {

namespace {

constexpr std::uint64_t kLine = 64;

/** Adapt a legacy void callback to the status-carrying form. */
Dce::CompletionFn
adaptLegacy(std::function<void()> onComplete)
{
    if (!onComplete)
        return nullptr;
    return [cb = std::move(onComplete)](const resilience::Status &) {
        cb();
    };
}

} // namespace

Dce::Dce(EventQueue &eq, const DceConfig &config, dram::MemorySystem &mem,
         const device::PimGeometry &pimGeometry,
         resilience::Manager *res)
    : eq_(eq), config_(config), mem_(mem), pimGeom_(pimGeometry),
      res_(res),
      ticker_(eq, config.periodPs(), [this] { return tick(); }),
      freeDataSlots_(config.dataBufferSlots()), stats_("dce")
{
    mem_.onDrain([this] {
        if (active_)
            ticker_.arm();
    });
    timelineTrack_ = telemetry::Timeline::global().track("dce");
    rec_ = &telemetry::attribution::Recorder::global();
    ringSeries_ = rec_->series("dce.ring_depth", 0.0, 64.0, 64);
    inflightSeries_ = rec_->series("dce.inflight", 0.0, 256.0, 64);
    telemetry::StatsRegistry::global().add(stats_, [this] {
        stats_.gauge("busy_us") = static_cast<double>(busyPs_) / 1e6;
        stats_.gauge("busy_pct") =
            eq_.now() > 0 ? 100.0 * static_cast<double>(busyPs_) /
                                static_cast<double>(eq_.now())
                          : 0.0;
    });
}

Dce::~Dce()
{
    telemetry::StatsRegistry::global().remove(stats_);
}

resilience::Status
Dce::validate(const DceTransfer &transfer) const
{
    using resilience::ErrorCode;
    using resilience::Status;

    if (transfer.streams.empty()) {
        return Status::failure(ErrorCode::EmptyDescriptor,
                               "descriptor lists no bank streams");
    }
    for (std::size_t i = 0; i < transfer.streams.size(); ++i) {
        if (transfer.streams[i].totalLines == 0) {
            std::ostringstream os;
            os << "stream " << i << " (bank "
               << transfer.streams[i].bankIdx
               << ") moves zero lines; the engine would never finish";
            return Status::failure(ErrorCode::EmptyStream, os.str());
        }
    }
    if (transfer.streams.size() * 8 > config_.addressBufferEntries()) {
        std::ostringstream os;
        os << transfer.streams.size()
           << " bank streams exceed the address buffer ("
           << config_.addressBufferEntries() << " entries)";
        return Status::failure(ErrorCode::DescriptorTooLarge, os.str());
    }
    return Status{};
}

void
Dce::start(DceTransfer transfer, std::function<void()> onComplete)
{
    const auto status = validate(transfer);
    if (!status.ok())
        fatal("DCE rejected descriptor: ", status.str());
    if (rec_->enabled() && transfer.attribId == 0) {
        transfer.attribId = rec_->open(
            telemetry::attribution::Kind::Transfer, eq_.now(),
            telemetry::attribution::Stage::QueueWait,
            transfer.streams.front().bankIdx,
            transfer.totalLines() * kLine);
        transfer.attribOwned = true;
    }
    beginTransfer(std::move(transfer),
                  adaptLegacy(std::move(onComplete)), eq_.now(),
                  nextTransferId_++);
}

void
Dce::beginTransfer(DceTransfer transfer, CompletionFn onComplete,
                   Tick enqueuedAt, std::uint64_t id)
{
    PIMMMU_ASSERT(!busy(), "DCE already busy");
    PIMMMU_ASSERT(!transfer.streams.empty(), "empty transfer");
    PIMMMU_ASSERT(transfer.streams.size() * 8 <=
                      config_.addressBufferEntries(),
                  "transfer exceeds address buffer capacity");

    auto active = std::make_unique<ActiveTransfer>();
    active->linesRemaining = transfer.totalLines();
    active->state.assign(transfer.streams.size(), StreamState{});
    active->onComplete = std::move(onComplete);
    active->id = id;
    active->enqueuedAt = enqueuedAt;
    active->startedAt = eq_.now();
    if (config_.usePimMs && transfer.dir != XferDirection::DramToDram) {
        std::vector<unsigned> banks;
        banks.reserve(transfer.streams.size());
        for (const auto &s : transfer.streams)
            banks.push_back(s.bankIdx);
        active->scheduler =
            std::make_unique<PimMs>(pimGeom_, banks, eq_.now());
        active->readBurstLeft.assign(active->scheduler->numChannels(),
                                     config_.burstLines);
        active->writeBurstLeft.assign(active->scheduler->numChannels(),
                                      config_.burstLines);
    }
    active->dmaReadBurstLeft = config_.burstLines;
    active->dmaWriteBurstLeft = config_.burstLines;
    active->transfer = std::move(transfer);
    active_ = std::move(active);
    if (active_->transfer.attribId != 0) {
        // Queue wait ends; engine setup (AGU priming, address-buffer
        // load) runs until the first line issues.
        rec_->enterStage(active_->transfer.attribId,
                         telemetry::attribution::Stage::Translate,
                         eq_.now());
        active_->refreshBusyAtStart = mem_.refreshBusyPsTotal();
    }
    active_->lastProgressAt = eq_.now();
    ++stats_.counter("transfers");
    stats_.average("phase_queue_us")
        .sample(static_cast<double>(eq_.now() - enqueuedAt) / 1e6);
    PIMMMU_TRACE_LOG(trace::Category::Dce, eq_.now(),
                     "start transfer #"
                         << id << ": "
                         << active_->transfer.streams.size()
                         << " bank streams, "
                         << active_->transfer.totalLines() << " lines");
    ticker_.arm();
    if (res_ && res_->policy().watchdogPs > 0)
        armWatchdog(res_->policy().watchdogPs, id);
}

void
Dce::armWatchdog(Tick delay, std::uint64_t xid)
{
    eq_.scheduleAfter(delay, [this, xid] { onWatchdog(xid); });
}

std::uint64_t
Dce::progressMark() const
{
    std::uint64_t m = active_->linesRemaining;
    for (const auto &st : active_->state) {
        m = m * 1099511628211ull +
            (st.readsIssued + (st.writesIssued << 20) +
             (st.writesDone << 40));
    }
    return m;
}

void
Dce::onWatchdog(std::uint64_t xid)
{
    // The transfer this watchdog guarded already finished (or failed).
    if (!active_ || active_->id != xid)
        return;

    const Tick period = res_->policy().watchdogPs;
    const std::uint64_t mark = progressMark();
    if (mark != active_->lastProgressMark) {
        active_->lastProgressMark = mark;
        active_->watchdogRestarts = 0;
        armWatchdog(period, xid);
        return;
    }
    if (inflight() > 0) {
        // The memory system still owes completions; not a lost-write
        // stall, keep waiting.
        armWatchdog(period, xid);
        return;
    }

    if (active_->watchdogRestarts >= res_->policy().maxWatchdogRestarts) {
        failActive(resilience::Status::failure(
            resilience::ErrorCode::TransferStalled,
            outstandingSummary()));
        return;
    }
    ++active_->watchdogRestarts;

    // Resync: with nothing in flight and no progress, every write that
    // was issued but never reported done had its completion lost. Roll
    // those back (restoring their data-buffer slots and write credits)
    // so the engine re-drives them.
    std::uint64_t lost = 0;
    for (auto &st : active_->state) {
        const std::uint64_t l = st.writesIssued - st.writesDone;
        st.writesIssued -= l;
        st.writeCredits += l;
        lost += l;
    }
    freeDataSlots_ += lost;
    ++stats_.counter("watchdog_resyncs");
    if (active_->transfer.attribId != 0) {
        // The window since the last completion made no forward
        // progress; re-book it from the live stage to the watchdog
        // bucket so stalls don't masquerade as DRAM service.
        rec_->bookStall(active_->transfer.attribId,
                        telemetry::attribution::Stage::Watchdog,
                        active_->lastProgressAt, eq_.now());
        rec_->noteWatchdogResync(active_->transfer.attribId);
        active_->lastProgressAt = eq_.now();
    }
    res_->noteWatchdogFire(eq_.now(), xid, lost);
    PIMMMU_TRACE_LOG(trace::Category::Dce, eq_.now(),
                     "watchdog resync transfer #"
                         << xid << ": " << lost
                         << " lost writes re-driven (restart "
                         << active_->watchdogRestarts << ")");
    ticker_.arm();
    armWatchdog(period << std::min(active_->watchdogRestarts, 10u),
                xid);
}

void
Dce::failActive(resilience::Status status)
{
    const Tick now = eq_.now();
    busyPs_ += now - active_->startedAt;
    ++stats_.counter("transfers_failed");
    telemetry::Timeline &tl = telemetry::Timeline::global();
    if (tl.enabled()) {
        tl.span(timelineTrack_,
                "transfer#" + std::to_string(active_->id) + "!failed",
                active_->startedAt, now);
    }
    PIMMMU_TRACE_LOG(trace::Category::Dce, now,
                     "transfer FAILED #" << active_->id << ": "
                                         << status.str());
    if (active_->transfer.attribId != 0 &&
        active_->transfer.attribOwned)
        rec_->close(active_->transfer.attribId, now, true);
    auto done = std::move(active_->onComplete);
    active_.reset();
    sampleRingDepth();
    // Any leaked buffer slots / phantom in-flight counts belonged to
    // the dead transfer; restore the engine to a clean idle state.
    readsInflight_ = 0;
    writesInflight_ = 0;
    freeDataSlots_ = config_.dataBufferSlots();
    if (done)
        done(status);
    startNextPending();
}

Addr
Dce::readAddrOf(const BankStream &s, std::uint64_t k) const
{
    switch (active_->transfer.dir) {
      case XferDirection::DramToPim:
        return s.hostBase[k % 8] + (k / 8) * kLine;
      case XferDirection::PimToDram:
        return s.wireBase + k * kLine;
      case XferDirection::DramToDram:
        return s.hostBase[0] + k * kLine;
    }
    panic("bad direction");
}

Addr
Dce::writeAddrOf(const BankStream &s, std::uint64_t k) const
{
    switch (active_->transfer.dir) {
      case XferDirection::DramToPim:
        return s.wireBase + k * kLine;
      case XferDirection::PimToDram:
        return s.hostBase[k % 8] + (k / 8) * kLine;
      case XferDirection::DramToDram:
        return s.wireBase + k * kLine;
    }
    panic("bad direction");
}

unsigned
Dce::inflight() const
{
    return readsInflight_ + writesInflight_;
}

void
Dce::onReadComplete(std::size_t slot, const dram::MemRequest &done)
{
    --readsInflight_;
    active_->lastProgressAt = eq_.now();
    if (active_->transfer.attribId != 0) {
        rec_->noteChannel(active_->transfer.attribId,
                          done.space == mapping::MemSpace::Pim,
                          done.coord.ch, false, eq_.now());
        rec_->sampleOccupancy(inflightSeries_, eq_.now(), inflight());
    }
    // Preprocessing unit: the line becomes writable after the transpose
    // pipeline latency. The transfer id guards against crediting a
    // successor transfer if this one fails while the event is pending.
    const std::uint64_t xid = active_->id;
    eq_.scheduleAfter(
        Tick{config_.transposeLatencyCycles} * config_.periodPs(),
        [this, slot, xid] {
            if (!active_ || active_->id != xid)
                return;
            ++active_->state[slot].writeCredits;
            ticker_.arm();
        });
}

void
Dce::onWriteComplete(std::size_t slot, const dram::MemRequest &done)
{
    if (testing::fault::fire("dce.drop_write_completion")) {
        // The completion report is lost: the controller has finished
        // the burst, but the engine never learns. The data-buffer slot
        // leaks and writesDone stalls until the watchdog resyncs.
        --writesInflight_;
        return;
    }
    --writesInflight_;
    ++freeDataSlots_;
    active_->lastProgressAt = eq_.now();
    if (active_->transfer.attribId != 0) {
        rec_->noteChannel(active_->transfer.attribId,
                          done.space == mapping::MemSpace::Pim,
                          done.coord.ch, true, eq_.now());
        rec_->sampleOccupancy(inflightSeries_, eq_.now(), inflight());
    }
    StreamState &st = active_->state[slot];
    ++st.writesDone;
    PIMMMU_ASSERT(active_->linesRemaining > 0, "write overrun");
    --active_->linesRemaining;
    finishIfDone();
    if (active_)
        ticker_.arm();
}

std::string
Dce::outstandingSummary() const
{
    std::ostringstream os;
    if (!active_) {
        os << "dce idle";
        if (!pending_.empty())
            os << " (" << pending_.size() << " transfers still queued)";
        return os.str();
    }
    const ActiveTransfer &at = *active_;
    os << "transfer#" << at.id << " "
       << (at.transfer.dir == XferDirection::DramToPim ? "D->P" : "P->D")
       << " linesRemaining=" << at.linesRemaining << "/"
       << at.transfer.totalLines() << " readsInflight=" << readsInflight_
       << " writesInflight=" << writesInflight_ << " freeDataSlots="
       << freeDataSlots_ << " queued=" << pending_.size();
    // Name the first few unfinished streams: usually one stuck bank
    // explains the hang.
    unsigned shown = 0;
    for (std::size_t i = 0; i < at.state.size() && shown < 4; ++i) {
        const StreamState &st = at.state[i];
        const BankStream &s = at.transfer.streams[i];
        if (st.writesDone >= s.totalLines)
            continue;
        os << " [stream" << i << " bank" << s.bankIdx << " reads="
           << st.readsIssued << " credits=" << st.writeCredits
           << " writes=" << st.writesDone << "/" << s.totalLines << "]";
        ++shown;
    }
    return os.str();
}

std::size_t
Dce::enqueue(DceTransfer transfer, std::function<void()> onComplete)
{
    std::size_t depth = 0;
    const auto status =
        enqueueChecked(std::move(transfer),
                       adaptLegacy(std::move(onComplete)), &depth);
    if (!status.ok())
        fatal("DCE rejected descriptor: ", status.str());
    return depth;
}

resilience::Status
Dce::enqueueChecked(DceTransfer transfer, CompletionFn onDone,
                    std::size_t *depth)
{
    const auto status = validate(transfer);
    if (!status.ok()) {
        ++stats_.counter("transfers_rejected");
        PIMMMU_TRACE_LOG(trace::Category::Dce, eq_.now(),
                         "descriptor rejected: " << status.str());
        return status;
    }
    const std::uint64_t id = nextTransferId_++;
    telemetry::Timeline &tl = telemetry::Timeline::global();
    if (tl.enabled()) {
        tl.instant(timelineTrack_, "enqueue#" + std::to_string(id),
                   eq_.now());
    }
    if (rec_->enabled()) {
        if (transfer.attribId == 0) {
            transfer.attribId = rec_->open(
                telemetry::attribution::Kind::Transfer, eq_.now(),
                telemetry::attribution::Stage::QueueWait,
                transfer.streams.front().bankIdx,
                transfer.totalLines() * kLine);
            transfer.attribOwned = true;
        } else {
            rec_->enterStage(transfer.attribId,
                             telemetry::attribution::Stage::QueueWait,
                             eq_.now());
        }
    }
    if (!busy() && pending_.empty()) {
        beginTransfer(std::move(transfer), std::move(onDone), eq_.now(),
                      id);
        sampleRingDepth();
        if (depth)
            *depth = 1;
        return resilience::Status{};
    }
    pending_.push_back(PendingTransfer{std::move(transfer),
                                       std::move(onDone), eq_.now(),
                                       id});
    ++stats_.counter("transfers_queued");
    sampleRingDepth();
    if (depth)
        *depth = pending_.size() + 1;
    return resilience::Status{};
}

void
Dce::sampleRingDepth()
{
    const std::size_t depth = pending_.size() + (active_ ? 1 : 0);
    if (ringObserver_)
        ringObserver_(depth);
    if (!rec_->enabled())
        return;
    rec_->sampleOccupancy(ringSeries_, eq_.now(),
                          static_cast<double>(depth));
}

void
Dce::emitAttributionTrace(Tick now)
{
    const std::uint64_t aid = active_->transfer.attribId;
    telemetry::Timeline &tl = telemetry::Timeline::global();
    if (aid == 0 || !tl.enabled())
        return;
    const std::string name = "xfer#" + std::to_string(active_->id);
    // Chain the descriptor's flow through its DCE span. Runtime-owned
    // flows started on the pim-mmu call span; engine-owned ones start
    // here.
    if (active_->transfer.attribOwned)
        tl.flowStart(timelineTrack_, name, active_->startedAt, aid);
    else
        tl.flowStep(timelineTrack_, name, active_->startedAt, aid);
    const telemetry::attribution::Record *r = rec_->peek(aid);
    if (!r)
        return;
    // Per-channel DRAM/PIM service spans summarizing this descriptor's
    // window on each channel, flow-linked to the DCE span. Registering
    // tracks is cheap and honors --trace-tracks by name.
    for (unsigned space = 0; space < 2; ++space) {
        for (unsigned ch = 0;
             ch < telemetry::attribution::Record::kMaxChannels; ++ch) {
            const auto &cs = r->channels[space][ch];
            if (!cs.touched() || cs.lastPs < cs.firstPs)
                continue;
            const unsigned track =
                tl.track((space ? "pim.ch" : "dram.ch") +
                         std::to_string(ch) + ".xfer");
            tl.span(track, name, cs.firstPs, cs.lastPs);
            tl.flowStep(track, name, cs.firstPs, aid);
        }
    }
    // Descriptors the engine opened itself (no runtime call wrapping
    // them) end their flow here; runtime-owned flows end on the call
    // span at interrupt delivery.
    if (active_->transfer.attribOwned)
        tl.flowEnd(timelineTrack_, name, now, aid);
}

void
Dce::finishIfDone()
{
    if (!active_ || active_->linesRemaining != 0)
        return;
    const Tick now = eq_.now();
    busyPs_ += now - active_->startedAt;

    // Phase-latency breakdown: schedule -> first issue -> last write.
    const Tick firstIssue = active_->firstIssueAt == kTickMax
                                ? now
                                : active_->firstIssueAt;
    stats_.average("phase_issue_us")
        .sample(static_cast<double>(firstIssue - active_->startedAt) /
                1e6);
    stats_.average("phase_drain_us")
        .sample(static_cast<double>(now - firstIssue) / 1e6);
    stats_.histogram("transfer_us", 0.0, 20000.0, 200)
        .sample(static_cast<double>(now - active_->enqueuedAt) / 1e6);

    telemetry::Timeline &tl = telemetry::Timeline::global();
    if (tl.enabled()) {
        tl.span(timelineTrack_,
                "transfer#" + std::to_string(active_->id),
                active_->startedAt, now);
    }
    if (active_->transfer.attribId != 0) {
        const std::uint64_t aid = active_->transfer.attribId;
        // Refresh blackout overlaps DRAM service; carve the
        // channel-averaged share of refresh time accrued during this
        // descriptor's service window out of its service bucket.
        const Tick refreshDelta =
            mem_.refreshBusyPsTotal() - active_->refreshBusyAtStart;
        const unsigned channels =
            mem_.dramChannels() + mem_.pimChannels();
        if (refreshDelta > 0 && channels > 0) {
            rec_->carve(
                aid, telemetry::attribution::Stage::DramService,
                telemetry::attribution::Stage::StallRefresh,
                refreshDelta / channels);
        }
        emitAttributionTrace(now);
        if (active_->transfer.attribOwned)
            rec_->close(aid, now, false);
    }
    PIMMMU_TRACE_LOG(trace::Category::Dce, eq_.now(),
                     "transfer complete #" << active_->id);
    auto done = std::move(active_->onComplete);
    active_.reset();
    sampleRingDepth();
    if (done)
        done(resilience::Status{});
    startNextPending();
}

void
Dce::startNextPending()
{
    if (active_ || pending_.empty())
        return;
    // Pop the next descriptor off the driver's ring.
    PendingTransfer next = std::move(pending_.front());
    pending_.pop_front();
    beginTransfer(std::move(next.transfer), std::move(next.onComplete),
                  next.enqueuedAt, next.id);
}

bool
Dce::issueWriteFor(std::size_t slot)
{
    StreamState &st = active_->state[slot];
    if (st.writeCredits == 0)
        return false;
    const BankStream &stream = active_->transfer.streams[slot];
    const Addr addr = writeAddrOf(stream, st.writesIssued);
    if (!mem_.canAccept(addr, true))
        return false;

    dram::MemRequest req;
    req.paddr = addr;
    req.write = true;
    const std::uint64_t xid = active_->id;
    req.onComplete = [this, slot, xid](const dram::MemRequest &done) {
        if (!active_ || active_->id != xid)
            return; // completion for a transfer the watchdog failed
        onWriteComplete(slot, done);
    };
    const bool ok = mem_.enqueue(std::move(req));
    PIMMMU_ASSERT(ok, "enqueue after canAccept failed");
    --st.writeCredits;
    ++st.writesIssued;
    ++writesInflight_;
    ++stats_.counter("writes_issued");
    noteFirstIssue();
    if (active_->transfer.attribId != 0)
        rec_->sampleOccupancy(inflightSeries_, eq_.now(), inflight());
    return true;
}

bool
Dce::issueReadFor(std::size_t slot)
{
    StreamState &st = active_->state[slot];
    const BankStream &stream = active_->transfer.streams[slot];
    if (st.readsIssued >= stream.totalLines)
        return false;
    if (freeDataSlots_ == 0)
        return false;
    const Addr addr = readAddrOf(stream, st.readsIssued);
    if (!mem_.canAccept(addr, false))
        return false;

    dram::MemRequest req;
    req.paddr = addr;
    req.write = false;
    const std::uint64_t xid = active_->id;
    req.onComplete = [this, slot, xid](const dram::MemRequest &done) {
        if (!active_ || active_->id != xid)
            return; // completion for a transfer the watchdog failed
        onReadComplete(slot, done);
    };
    const bool ok = mem_.enqueue(std::move(req));
    PIMMMU_ASSERT(ok, "enqueue after canAccept failed");
    ++st.readsIssued;
    ++readsInflight_;
    --freeDataSlots_;
    if (!testing::fault::fire("dce.leak_read_counter"))
        ++stats_.counter("reads_issued");
    noteFirstIssue();
    if (active_->transfer.attribId != 0)
        rec_->sampleOccupancy(inflightSeries_, eq_.now(), inflight());
    return true;
}

void
Dce::noteFirstIssue()
{
    if (active_->firstIssueAt != kTickMax)
        return;
    active_->firstIssueAt = eq_.now();
    if (active_->transfer.attribId != 0) {
        rec_->enterStage(active_->transfer.attribId,
                         telemetry::attribution::Stage::DramService,
                         eq_.now());
    }
}

bool
Dce::tryIssueWrite()
{
    ActiveTransfer &at = *active_;
    if (at.scheduler) {
        // PIM-MS: burst-granular interleave across channels and banks.
        PimMs &ms = *at.scheduler;
        for (unsigned c = 0; c < ms.numChannels(); ++c) {
            const unsigned ch = ms.nextChannel();
            const auto &slots = ms.channelSlots(ch);
            unsigned &cursor = ms.cursor(ch, true);
            unsigned &burst = at.writeBurstLeft[ch];
            for (std::size_t n = 0; n < slots.size(); ++n) {
                const unsigned slot = slots[cursor];
                if (issueWriteFor(slot)) {
                    if (--burst == 0) {
                        cursor = (cursor + 1) % slots.size();
                        burst = config_.burstLines;
                    }
                    return true;
                }
                cursor = (cursor + 1) % slots.size();
                burst = config_.burstLines;
            }
        }
        return false;
    }

    if (at.transfer.dir == XferDirection::DramToDram) {
        // Chunked memcpy: burst-granular round-robin over the chunks.
        const std::size_t n = at.transfer.streams.size();
        for (std::size_t i = 0; i < n; ++i) {
            const std::size_t slot = at.dmaWriteStream;
            if (issueWriteFor(slot)) {
                if (--at.dmaWriteBurstLeft == 0) {
                    at.dmaWriteStream = (slot + 1) % n;
                    at.dmaWriteBurstLeft = config_.burstLines;
                }
                return true;
            }
            at.dmaWriteStream = (slot + 1) % n;
            at.dmaWriteBurstLeft = config_.burstLines;
        }
        return false;
    }

    // Vanilla DMA: strictly in descriptor order, shallow window.
    if (inflight() >= config_.dmaWindow)
        return false;
    while (at.dmaWriteStream < at.transfer.streams.size()) {
        StreamState &st = at.state[at.dmaWriteStream];
        if (st.writesIssued <
            at.transfer.streams[at.dmaWriteStream].totalLines) {
            return issueWriteFor(at.dmaWriteStream);
        }
        ++at.dmaWriteStream;
    }
    return false;
}

bool
Dce::tryIssueRead()
{
    ActiveTransfer &at = *active_;
    if (at.scheduler) {
        PimMs &ms = *at.scheduler;
        for (unsigned c = 0; c < ms.numChannels(); ++c) {
            const unsigned ch = ms.nextChannel();
            const auto &slots = ms.channelSlots(ch);
            unsigned &cursor = ms.cursor(ch, false);
            unsigned &burst = at.readBurstLeft[ch];
            for (std::size_t n = 0; n < slots.size(); ++n) {
                const unsigned slot = slots[cursor];
                if (issueReadFor(slot)) {
                    if (--burst == 0) {
                        cursor = (cursor + 1) % slots.size();
                        burst = config_.burstLines;
                    }
                    return true;
                }
                cursor = (cursor + 1) % slots.size();
                burst = config_.burstLines;
            }
        }
        return false;
    }

    if (at.transfer.dir == XferDirection::DramToDram) {
        const std::size_t n = at.transfer.streams.size();
        for (std::size_t i = 0; i < n; ++i) {
            const std::size_t slot = at.dmaReadStream;
            if (issueReadFor(slot)) {
                if (--at.dmaReadBurstLeft == 0) {
                    at.dmaReadStream = (slot + 1) % n;
                    at.dmaReadBurstLeft = config_.burstLines;
                }
                return true;
            }
            at.dmaReadStream = (slot + 1) % n;
            at.dmaReadBurstLeft = config_.burstLines;
        }
        return false;
    }

    if (inflight() >= config_.dmaWindow)
        return false;
    while (at.dmaReadStream < at.transfer.streams.size()) {
        StreamState &st = at.state[at.dmaReadStream];
        if (st.readsIssued <
            at.transfer.streams[at.dmaReadStream].totalLines) {
            return issueReadFor(at.dmaReadStream);
        }
        ++at.dmaReadStream;
    }
    return false;
}

bool
Dce::tick()
{
    if (!active_)
        return false;

    unsigned issued = 0;
    // Drain the data buffer first, then refill it.
    for (unsigned i = 0; i < config_.issueWidth; ++i) {
        if (!tryIssueWrite())
            break;
        ++issued;
    }
    for (unsigned i = issued; i < config_.issueWidth; ++i) {
        if (!tryIssueRead())
            break;
        ++issued;
    }

    if (issued > 0)
        return true;
    // Nothing issuable this cycle: sleep until a completion, transpose
    // output, or controller drain re-arms the ticker.
    return false;
}

void
Dce::saveState(serialize::ByteSink &out) const
{
    PIMMMU_ASSERT(!active_ && pending_.empty() &&
                      readsInflight_ == 0 && writesInflight_ == 0,
                  "DCE checkpoint requires an empty descriptor ring");
    out.u64(freeDataSlots_);
    out.u64(busyPs_);
    out.u64(nextTransferId_);
    stats::saveGroup(out, stats_);
}

bool
Dce::restoreState(serialize::ByteSource &in)
{
    freeDataSlots_ = in.u64();
    busyPs_ = in.u64();
    nextTransferId_ = in.u64();
    return stats::restoreGroup(in, stats_);
}

} // namespace core
} // namespace pimmmu

#include "core/dce.hh"

#include <sstream>

#include "common/trace.hh"
#include "telemetry/stats_registry.hh"
#include "telemetry/timeline.hh"
#include "testing/fault_injection.hh"

namespace pimmmu {
namespace core {

namespace {
constexpr std::uint64_t kLine = 64;
}

Dce::Dce(EventQueue &eq, const DceConfig &config, dram::MemorySystem &mem,
         const device::PimGeometry &pimGeometry)
    : eq_(eq), config_(config), mem_(mem), pimGeom_(pimGeometry),
      ticker_(eq, config.periodPs(), [this] { return tick(); }),
      freeDataSlots_(config.dataBufferSlots()), stats_("dce")
{
    mem_.onDrain([this] {
        if (active_)
            ticker_.arm();
    });
    timelineTrack_ = telemetry::Timeline::global().track("dce");
    telemetry::StatsRegistry::global().add(stats_, [this] {
        stats_.gauge("busy_us") = static_cast<double>(busyPs_) / 1e6;
        stats_.gauge("busy_pct") =
            eq_.now() > 0 ? 100.0 * static_cast<double>(busyPs_) /
                                static_cast<double>(eq_.now())
                          : 0.0;
    });
}

Dce::~Dce()
{
    telemetry::StatsRegistry::global().remove(stats_);
}

void
Dce::start(DceTransfer transfer, std::function<void()> onComplete)
{
    beginTransfer(std::move(transfer), std::move(onComplete), eq_.now(),
                  nextTransferId_++);
}

void
Dce::beginTransfer(DceTransfer transfer,
                   std::function<void()> onComplete, Tick enqueuedAt,
                   std::uint64_t id)
{
    PIMMMU_ASSERT(!busy(), "DCE already busy");
    PIMMMU_ASSERT(!transfer.streams.empty(), "empty transfer");
    PIMMMU_ASSERT(transfer.streams.size() * 8 <=
                      config_.addressBufferEntries(),
                  "transfer exceeds address buffer capacity");

    auto active = std::make_unique<ActiveTransfer>();
    active->linesRemaining = transfer.totalLines();
    active->state.assign(transfer.streams.size(), StreamState{});
    active->onComplete = std::move(onComplete);
    active->id = id;
    active->enqueuedAt = enqueuedAt;
    active->startedAt = eq_.now();
    if (config_.usePimMs && transfer.dir != XferDirection::DramToDram) {
        std::vector<unsigned> banks;
        banks.reserve(transfer.streams.size());
        for (const auto &s : transfer.streams)
            banks.push_back(s.bankIdx);
        active->scheduler =
            std::make_unique<PimMs>(pimGeom_, banks, eq_.now());
        active->readBurstLeft.assign(active->scheduler->numChannels(),
                                     config_.burstLines);
        active->writeBurstLeft.assign(active->scheduler->numChannels(),
                                      config_.burstLines);
    }
    active->dmaReadBurstLeft = config_.burstLines;
    active->dmaWriteBurstLeft = config_.burstLines;
    active->transfer = std::move(transfer);
    active_ = std::move(active);
    ++stats_.counter("transfers");
    stats_.average("phase_queue_us")
        .sample(static_cast<double>(eq_.now() - enqueuedAt) / 1e6);
    PIMMMU_TRACE_LOG(trace::Category::Dce, eq_.now(),
                     "start transfer #"
                         << id << ": "
                         << active_->transfer.streams.size()
                         << " bank streams, "
                         << active_->transfer.totalLines() << " lines");
    ticker_.arm();
}

Addr
Dce::readAddrOf(const BankStream &s, std::uint64_t k) const
{
    switch (active_->transfer.dir) {
      case XferDirection::DramToPim:
        return s.hostBase[k % 8] + (k / 8) * kLine;
      case XferDirection::PimToDram:
        return s.wireBase + k * kLine;
      case XferDirection::DramToDram:
        return s.hostBase[0] + k * kLine;
    }
    panic("bad direction");
}

Addr
Dce::writeAddrOf(const BankStream &s, std::uint64_t k) const
{
    switch (active_->transfer.dir) {
      case XferDirection::DramToPim:
        return s.wireBase + k * kLine;
      case XferDirection::PimToDram:
        return s.hostBase[k % 8] + (k / 8) * kLine;
      case XferDirection::DramToDram:
        return s.wireBase + k * kLine;
    }
    panic("bad direction");
}

unsigned
Dce::inflight() const
{
    return readsInflight_ + writesInflight_;
}

void
Dce::onReadComplete(std::size_t slot)
{
    --readsInflight_;
    // Preprocessing unit: the line becomes writable after the transpose
    // pipeline latency.
    eq_.scheduleAfter(
        Tick{config_.transposeLatencyCycles} * config_.periodPs(),
        [this, slot] {
            if (!active_)
                return;
            ++active_->state[slot].writeCredits;
            ticker_.arm();
        });
}

void
Dce::onWriteComplete(std::size_t slot)
{
    --writesInflight_;
    ++freeDataSlots_;
    StreamState &st = active_->state[slot];
    ++st.writesDone;
    PIMMMU_ASSERT(active_->linesRemaining > 0, "write overrun");
    --active_->linesRemaining;
    finishIfDone();
    if (active_)
        ticker_.arm();
}

std::string
Dce::outstandingSummary() const
{
    std::ostringstream os;
    if (!active_) {
        os << "dce idle";
        if (!pending_.empty())
            os << " (" << pending_.size() << " transfers still queued)";
        return os.str();
    }
    const ActiveTransfer &at = *active_;
    os << "transfer#" << at.id << " "
       << (at.transfer.dir == XferDirection::DramToPim ? "D->P" : "P->D")
       << " linesRemaining=" << at.linesRemaining << "/"
       << at.transfer.totalLines() << " readsInflight=" << readsInflight_
       << " writesInflight=" << writesInflight_ << " freeDataSlots="
       << freeDataSlots_ << " queued=" << pending_.size();
    // Name the first few unfinished streams: usually one stuck bank
    // explains the hang.
    unsigned shown = 0;
    for (std::size_t i = 0; i < at.state.size() && shown < 4; ++i) {
        const StreamState &st = at.state[i];
        const BankStream &s = at.transfer.streams[i];
        if (st.writesDone >= s.totalLines)
            continue;
        os << " [stream" << i << " bank" << s.bankIdx << " reads="
           << st.readsIssued << " credits=" << st.writeCredits
           << " writes=" << st.writesDone << "/" << s.totalLines << "]";
        ++shown;
    }
    return os.str();
}

std::size_t
Dce::enqueue(DceTransfer transfer, std::function<void()> onComplete)
{
    const std::uint64_t id = nextTransferId_++;
    telemetry::Timeline &tl = telemetry::Timeline::global();
    if (tl.enabled()) {
        tl.instant(timelineTrack_, "enqueue#" + std::to_string(id),
                   eq_.now());
    }
    if (!busy() && pending_.empty()) {
        beginTransfer(std::move(transfer), std::move(onComplete),
                      eq_.now(), id);
        return 1;
    }
    pending_.push_back(PendingTransfer{std::move(transfer),
                                       std::move(onComplete), eq_.now(),
                                       id});
    ++stats_.counter("transfers_queued");
    return pending_.size() + 1;
}

void
Dce::finishIfDone()
{
    if (!active_ || active_->linesRemaining != 0)
        return;
    const Tick now = eq_.now();
    busyPs_ += now - active_->startedAt;

    // Phase-latency breakdown: schedule -> first issue -> last write.
    const Tick firstIssue = active_->firstIssueAt == kTickMax
                                ? now
                                : active_->firstIssueAt;
    stats_.average("phase_issue_us")
        .sample(static_cast<double>(firstIssue - active_->startedAt) /
                1e6);
    stats_.average("phase_drain_us")
        .sample(static_cast<double>(now - firstIssue) / 1e6);
    stats_.histogram("transfer_us", 0.0, 20000.0, 200)
        .sample(static_cast<double>(now - active_->enqueuedAt) / 1e6);

    telemetry::Timeline &tl = telemetry::Timeline::global();
    if (tl.enabled()) {
        tl.span(timelineTrack_,
                "transfer#" + std::to_string(active_->id),
                active_->startedAt, now);
    }
    PIMMMU_TRACE_LOG(trace::Category::Dce, eq_.now(),
                     "transfer complete #" << active_->id);
    auto done = std::move(active_->onComplete);
    active_.reset();
    if (done)
        done();
    if (!active_ && !pending_.empty()) {
        // Pop the next descriptor off the driver's ring.
        PendingTransfer next = std::move(pending_.front());
        pending_.pop_front();
        beginTransfer(std::move(next.transfer),
                      std::move(next.onComplete), next.enqueuedAt,
                      next.id);
    }
}

bool
Dce::issueWriteFor(std::size_t slot)
{
    StreamState &st = active_->state[slot];
    if (st.writeCredits == 0)
        return false;
    const BankStream &stream = active_->transfer.streams[slot];
    const Addr addr = writeAddrOf(stream, st.writesIssued);
    if (!mem_.canAccept(addr, true))
        return false;

    dram::MemRequest req;
    req.paddr = addr;
    req.write = true;
    req.onComplete = [this, slot](const dram::MemRequest &) {
        onWriteComplete(slot);
    };
    const bool ok = mem_.enqueue(std::move(req));
    PIMMMU_ASSERT(ok, "enqueue after canAccept failed");
    --st.writeCredits;
    ++st.writesIssued;
    ++writesInflight_;
    ++stats_.counter("writes_issued");
    noteFirstIssue();
    return true;
}

bool
Dce::issueReadFor(std::size_t slot)
{
    StreamState &st = active_->state[slot];
    const BankStream &stream = active_->transfer.streams[slot];
    if (st.readsIssued >= stream.totalLines)
        return false;
    if (freeDataSlots_ == 0)
        return false;
    const Addr addr = readAddrOf(stream, st.readsIssued);
    if (!mem_.canAccept(addr, false))
        return false;

    dram::MemRequest req;
    req.paddr = addr;
    req.write = false;
    req.onComplete = [this, slot](const dram::MemRequest &) {
        onReadComplete(slot);
    };
    const bool ok = mem_.enqueue(std::move(req));
    PIMMMU_ASSERT(ok, "enqueue after canAccept failed");
    ++st.readsIssued;
    ++readsInflight_;
    --freeDataSlots_;
    if (!testing::fault::fire("dce.leak_read_counter"))
        ++stats_.counter("reads_issued");
    noteFirstIssue();
    return true;
}

void
Dce::noteFirstIssue()
{
    if (active_->firstIssueAt == kTickMax)
        active_->firstIssueAt = eq_.now();
}

bool
Dce::tryIssueWrite()
{
    ActiveTransfer &at = *active_;
    if (at.scheduler) {
        // PIM-MS: burst-granular interleave across channels and banks.
        PimMs &ms = *at.scheduler;
        for (unsigned c = 0; c < ms.numChannels(); ++c) {
            const unsigned ch = ms.nextChannel();
            const auto &slots = ms.channelSlots(ch);
            unsigned &cursor = ms.cursor(ch, true);
            unsigned &burst = at.writeBurstLeft[ch];
            for (std::size_t n = 0; n < slots.size(); ++n) {
                const unsigned slot = slots[cursor];
                if (issueWriteFor(slot)) {
                    if (--burst == 0) {
                        cursor = (cursor + 1) % slots.size();
                        burst = config_.burstLines;
                    }
                    return true;
                }
                cursor = (cursor + 1) % slots.size();
                burst = config_.burstLines;
            }
        }
        return false;
    }

    if (at.transfer.dir == XferDirection::DramToDram) {
        // Chunked memcpy: burst-granular round-robin over the chunks.
        const std::size_t n = at.transfer.streams.size();
        for (std::size_t i = 0; i < n; ++i) {
            const std::size_t slot = at.dmaWriteStream;
            if (issueWriteFor(slot)) {
                if (--at.dmaWriteBurstLeft == 0) {
                    at.dmaWriteStream = (slot + 1) % n;
                    at.dmaWriteBurstLeft = config_.burstLines;
                }
                return true;
            }
            at.dmaWriteStream = (slot + 1) % n;
            at.dmaWriteBurstLeft = config_.burstLines;
        }
        return false;
    }

    // Vanilla DMA: strictly in descriptor order, shallow window.
    if (inflight() >= config_.dmaWindow)
        return false;
    while (at.dmaWriteStream < at.transfer.streams.size()) {
        StreamState &st = at.state[at.dmaWriteStream];
        if (st.writesIssued <
            at.transfer.streams[at.dmaWriteStream].totalLines) {
            return issueWriteFor(at.dmaWriteStream);
        }
        ++at.dmaWriteStream;
    }
    return false;
}

bool
Dce::tryIssueRead()
{
    ActiveTransfer &at = *active_;
    if (at.scheduler) {
        PimMs &ms = *at.scheduler;
        for (unsigned c = 0; c < ms.numChannels(); ++c) {
            const unsigned ch = ms.nextChannel();
            const auto &slots = ms.channelSlots(ch);
            unsigned &cursor = ms.cursor(ch, false);
            unsigned &burst = at.readBurstLeft[ch];
            for (std::size_t n = 0; n < slots.size(); ++n) {
                const unsigned slot = slots[cursor];
                if (issueReadFor(slot)) {
                    if (--burst == 0) {
                        cursor = (cursor + 1) % slots.size();
                        burst = config_.burstLines;
                    }
                    return true;
                }
                cursor = (cursor + 1) % slots.size();
                burst = config_.burstLines;
            }
        }
        return false;
    }

    if (at.transfer.dir == XferDirection::DramToDram) {
        const std::size_t n = at.transfer.streams.size();
        for (std::size_t i = 0; i < n; ++i) {
            const std::size_t slot = at.dmaReadStream;
            if (issueReadFor(slot)) {
                if (--at.dmaReadBurstLeft == 0) {
                    at.dmaReadStream = (slot + 1) % n;
                    at.dmaReadBurstLeft = config_.burstLines;
                }
                return true;
            }
            at.dmaReadStream = (slot + 1) % n;
            at.dmaReadBurstLeft = config_.burstLines;
        }
        return false;
    }

    if (inflight() >= config_.dmaWindow)
        return false;
    while (at.dmaReadStream < at.transfer.streams.size()) {
        StreamState &st = at.state[at.dmaReadStream];
        if (st.readsIssued <
            at.transfer.streams[at.dmaReadStream].totalLines) {
            return issueReadFor(at.dmaReadStream);
        }
        ++at.dmaReadStream;
    }
    return false;
}

bool
Dce::tick()
{
    if (!active_)
        return false;

    unsigned issued = 0;
    // Drain the data buffer first, then refill it.
    for (unsigned i = 0; i < config_.issueWidth; ++i) {
        if (!tryIssueWrite())
            break;
        ++issued;
    }
    for (unsigned i = issued; i < config_.issueWidth; ++i) {
        if (!tryIssueRead())
            break;
        ++issued;
    }

    if (issued > 0)
        return true;
    // Nothing issuable this cycle: sleep until a completion, transpose
    // output, or controller drain re-arms the ticker.
    return false;
}

} // namespace core
} // namespace pimmmu

/**
 * @file
 * The PIM-MMU software stack (paper section IV-B): the user-level
 * runtime API (pim_mmu_transfer) and the device-driver model (MMIO
 * doorbell, completion interrupt, requesting process sleep/wake).
 *
 * Unlike the baseline's multithreaded copy, a pim_mmu_transfer call is
 * made from a single thread which only marshals the descriptor into the
 * DCE's address buffer and then sleeps until the interrupt arrives.
 */

#ifndef PIMMMU_CORE_PIM_MMU_RUNTIME_HH
#define PIMMMU_CORE_PIM_MMU_RUNTIME_HH

#include <functional>
#include <memory>

#include "core/dce.hh"
#include "cpu/cpu.hh"
#include "cpu/thread.hh"
#include "mmu/mmu.hh"
#include "pim/host_transfer.hh"
#include "pim/pim_device.hh"

namespace pimmmu {
namespace core {

/**
 * Validated, bank-grouped form of a PimMmuOp plus the functional-copy
 * plan. Built once per call by the runtime.
 */
class PimMmuRuntime
{
  public:
    using CompletionFn = Dce::CompletionFn;

    PimMmuRuntime(EventQueue &eq, Dce &dce, dram::MemorySystem &mem,
                  device::PimDevice &pim,
                  resilience::Manager *res = nullptr,
                  const mmu::MmuConfig &mmuCfg = mmu::MmuConfig{});

    ~PimMmuRuntime();

    /**
     * Offload a DRAM<->PIM transfer to the DCE.
     *
     * Functional semantics are applied immediately (host buffers /
     * DPU MRAM contents move now); the timing plane spans the MMIO
     * doorbell write, the DCE transfer, and the completion interrupt.
     *
     * Constraints (checked): sizePerPim is a multiple of 8;
     * pimBaseHeapPtr is 8-byte aligned; host arrays are 64-byte
     * aligned; the listed PIM cores cover whole banks (all 8 chips of
     * every touched bank), which is how PrIM-style workloads use the
     * device.
     *
     * @param op         the transfer descriptor (paper Fig. 10(b))
     * @param onComplete fired when the interrupt is handled
     */
    void transfer(const PimMmuOp &op, std::function<void()> onComplete);

    /**
     * Resilient variant of transfer(). Descriptor problems (malformed
     * op, DCE capacity, every listed PIM core health-masked) are
     * returned synchronously and nothing is enqueued; accepted
     * transfers report their final status through @p onComplete.
     *
     * With a resilience manager attached, the transfer path runs the
     * policy's detection (link ECC, descriptor CRC) per attempt and,
     * when retry is enabled, re-drives corrupt transfers with
     * exponential backoff up to the policy budget. With masking
     * enabled, listed PIM cores that have failed are excised from the
     * scatter plan (whole banks) instead of failing the call.
     */
    resilience::Status transferChecked(const PimMmuOp &op,
                                       CompletionFn onComplete);

    /**
     * Build the timing-plane descriptor without executing it (exposed
     * for tests and for the DRAM->DRAM DCE-memcpy path).
     */
    DceTransfer buildDescriptor(const PimMmuOp &op) const;

    /** Descriptor from an already-validated bank grouping. */
    DceTransfer descriptorFrom(const device::BankGrouping &grouping,
                               const PimMmuOp &op) const;

    /** Apply only the functional (data) semantics of @p op. */
    void functionalCopy(const PimMmuOp &op);

    Dce &dce() { return dce_; }
    stats::Group &stats() { return stats_; }

    /**
     * Fast-forward plane switch (see sim::Plane). When on, accepted
     * transfers run validation, health masking, the guarded functional
     * copy and the synchronous retry loop exactly as the timing path
     * does — same payload bytes, same functional/resilience counters —
     * but complete immediately instead of riding the doorbell ->
     * DCE -> interrupt event chain, so simulated time does not move.
     */
    void setFastForward(bool on) { fastForward_ = on; }
    bool fastForward() const { return fastForward_; }

    /**
     * The translation layer, instantiated on first use so purely
     * physical runs carry no MMU state (and no "mmu" stats group) at
     * all. Map tenants' VMAs here, then submit ops with op.tenant set.
     */
    mmu::Mmu &mmu();

    /** Non-instantiating peek (nullptr until mmu() was called). */
    const mmu::Mmu *mmuIfPresent() const { return mmu_.get(); }

    /**
     * Checkpoint the runtime's persistent state: call-id counter, MMU
     * presence + contents, stats. In-flight calls hold closures and
     * cannot be serialized — snapshots are taken at quiesced points.
     */
    void saveState(serialize::ByteSink &out) const;

    /** Inverse of saveState. @return false on a malformed payload. */
    bool restoreState(serialize::ByteSource &in);

  private:
    /** State shared across the (possibly retried) attempts of a call. */
    struct CallCtx
    {
        PimMmuOp op;                    //!< post-masking effective op
        device::BankGrouping grouping;
        unsigned attempt = 0;
        Tick calledAt = 0;
        std::uint64_t callId = 0;
        /** Latency-attribution record spanning every attempt. */
        std::uint64_t attribId = 0;
        CompletionFn onComplete;
        /** Accounting of the most recent attempt's guard. */
        std::uint64_t lastUncorrectedWords = 0;
        /** Submitting tenant (kNoTenant on the physical path). */
        mmu::TenantId tenant = mmu::kNoTenant;
        /** Modeled TLB + walk time resolving the op's addresses. */
        Tick xlatPs = 0;
        /** Translation time is charged once, on the first doorbell
         *  (retries re-ring with an already-resolved descriptor). */
        bool xlatCharged = false;
    };

    void validate(const PimMmuOp &op) const;

    /**
     * Resolve a virtually addressed op in place: every dramAddrArr
     * entry through the tenant's DRAM-region VMAs and pimBaseHeapPtr
     * through a PIM-region VMA, accumulating modeled TLB/walk time
     * into @p xlatPs. On success the op is physical (tenant cleared).
     */
    resilience::Status resolveVirtual(PimMmuOp &op, Tick &xlatPs);

    void runAttempt(const std::shared_ptr<CallCtx> &ctx);
    /** Functional-plane-only attempt loop (fast-forward mode). */
    void runFastForward(const std::shared_ptr<CallCtx> &ctx);
    void onAttemptDone(const std::shared_ptr<CallCtx> &ctx, bool dataOk,
                       const resilience::Status &dceStatus);
    void finishCall(const std::shared_ptr<CallCtx> &ctx,
                    resilience::Status status);

    EventQueue &eq_;
    Dce &dce_;
    dram::MemorySystem &mem_;
    device::PimDevice &pim_;
    resilience::Manager *res_;
    mmu::MmuConfig mmuCfg_;
    std::unique_ptr<mmu::Mmu> mmu_;
    std::uint64_t nextCallId_ = 0;
    unsigned timelineTrack_ = 0;
    bool fastForward_ = false;
    stats::Group stats_;
};

/**
 * The requesting user process: marshals the op (brief CPU work), rings
 * the doorbell, then sleeps until the driver wakes it on interrupt.
 * This is the only CPU involvement of a PIM-MMU transfer (Fig. 4(b)).
 */
class PimMmuRequestThread : public cpu::SoftThread
{
  public:
    PimMmuRequestThread(PimMmuRuntime &runtime, PimMmuOp op,
                        std::function<void()> onComplete = nullptr);

    /** Status-aware variant: sees how the transfer ended. */
    PimMmuRequestThread(PimMmuRuntime &runtime, PimMmuOp op,
                        PimMmuRuntime::CompletionFn onComplete);

    bool finished() const override { return state_ == State::Done; }
    unsigned step(cpu::Core &core) override;
    const char *label() const override { return "pim_mmu_transfer"; }

    /** The process sleeps in the driver, releasing its core. */
    bool yieldsWhenBlocked() const override { return true; }

  private:
    enum class State
    {
        Marshal,
        Sleeping,
        Done
    };

    PimMmuRuntime &runtime_;
    PimMmuOp op_;
    PimMmuRuntime::CompletionFn onComplete_;
    State state_ = State::Marshal;
};

} // namespace core
} // namespace pimmmu

#endif // PIMMMU_CORE_PIM_MMU_RUNTIME_HH

/**
 * @file
 * The PIM-MMU software stack (paper section IV-B): the user-level
 * runtime API (pim_mmu_transfer) and the device-driver model (MMIO
 * doorbell, completion interrupt, requesting process sleep/wake).
 *
 * Unlike the baseline's multithreaded copy, a pim_mmu_transfer call is
 * made from a single thread which only marshals the descriptor into the
 * DCE's address buffer and then sleeps until the interrupt arrives.
 */

#ifndef PIMMMU_CORE_PIM_MMU_RUNTIME_HH
#define PIMMMU_CORE_PIM_MMU_RUNTIME_HH

#include <functional>
#include <memory>

#include "core/dce.hh"
#include "cpu/cpu.hh"
#include "cpu/thread.hh"
#include "pim/pim_device.hh"

namespace pimmmu {
namespace core {

/**
 * Validated, bank-grouped form of a PimMmuOp plus the functional-copy
 * plan. Built once per call by the runtime.
 */
class PimMmuRuntime
{
  public:
    PimMmuRuntime(EventQueue &eq, Dce &dce, dram::MemorySystem &mem,
                  device::PimDevice &pim);

    ~PimMmuRuntime();

    /**
     * Offload a DRAM<->PIM transfer to the DCE.
     *
     * Functional semantics are applied immediately (host buffers /
     * DPU MRAM contents move now); the timing plane spans the MMIO
     * doorbell write, the DCE transfer, and the completion interrupt.
     *
     * Constraints (checked): sizePerPim is a multiple of 8;
     * pimBaseHeapPtr is 8-byte aligned; host arrays are 64-byte
     * aligned; the listed PIM cores cover whole banks (all 8 chips of
     * every touched bank), which is how PrIM-style workloads use the
     * device.
     *
     * @param op         the transfer descriptor (paper Fig. 10(b))
     * @param onComplete fired when the interrupt is handled
     */
    void transfer(const PimMmuOp &op, std::function<void()> onComplete);

    /**
     * Build the timing-plane descriptor without executing it (exposed
     * for tests and for the DRAM->DRAM DCE-memcpy path).
     */
    DceTransfer buildDescriptor(const PimMmuOp &op) const;

    /** Apply only the functional (data) semantics of @p op. */
    void functionalCopy(const PimMmuOp &op);

    Dce &dce() { return dce_; }
    stats::Group &stats() { return stats_; }

  private:
    void validate(const PimMmuOp &op) const;

    EventQueue &eq_;
    Dce &dce_;
    dram::MemorySystem &mem_;
    device::PimDevice &pim_;
    std::uint64_t nextCallId_ = 0;
    unsigned timelineTrack_ = 0;
    stats::Group stats_;
};

/**
 * The requesting user process: marshals the op (brief CPU work), rings
 * the doorbell, then sleeps until the driver wakes it on interrupt.
 * This is the only CPU involvement of a PIM-MMU transfer (Fig. 4(b)).
 */
class PimMmuRequestThread : public cpu::SoftThread
{
  public:
    PimMmuRequestThread(PimMmuRuntime &runtime, PimMmuOp op,
                        std::function<void()> onComplete = nullptr);

    bool finished() const override { return state_ == State::Done; }
    unsigned step(cpu::Core &core) override;
    const char *label() const override { return "pim_mmu_transfer"; }

    /** The process sleeps in the driver, releasing its core. */
    bool yieldsWhenBlocked() const override { return true; }

  private:
    enum class State
    {
        Marshal,
        Sleeping,
        Done
    };

    PimMmuRuntime &runtime_;
    PimMmuOp op_;
    std::function<void()> onComplete_;
    State state_ = State::Marshal;
};

} // namespace core
} // namespace pimmmu

#endif // PIMMMU_CORE_PIM_MMU_RUNTIME_HH

/**
 * @file
 * The user-visible PIM-MMU transfer descriptor (paper Fig. 10(b)).
 */

#ifndef PIMMMU_CORE_PIM_MMU_OP_HH
#define PIMMMU_CORE_PIM_MMU_OP_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "mmu/mmu_types.hh"

namespace pimmmu {
namespace core {

/** Transfer direction across the DRAM / PIM physical address spaces. */
enum class XferDirection
{
    DramToPim,
    PimToDram,
    /** DCE-internal: plain DRAM->DRAM copy (no transpose, no PIM). */
    DramToDram
};

/**
 * Argument block of pim_mmu_transfer. Mirrors the paper's pim_mmu_op:
 * direction, per-PIM-core size, an array of host-side (DRAM physical)
 * array pointers, the destination PIM core ids, and the MRAM heap base
 * pointer. The PIM address of each stream is derived from the PIM core
 * id plus the heap pointer (paper Fig. 10, lines 21-22).
 */
struct PimMmuOp
{
    XferDirection type = XferDirection::DramToPim;

    /** Bytes per PIM core (must be a multiple of 8). */
    std::uint64_t sizePerPim = 0;

    /** One DRAM physical base address per PIM core. */
    std::vector<Addr> dramAddrArr;

    /** Destination/source PIM core (DPU) ids. */
    std::vector<unsigned> pimIdArr;

    /** Byte offset into each DPU's MRAM heap (8-byte aligned). */
    Addr pimBaseHeapPtr = 0;

    /**
     * Address-space handle. kNoTenant (the default) means the
     * addresses above are physical and the op takes the legacy
     * direct-physical path, bit- and cycle-identical to pre-MMU
     * builds. Any other value makes dramAddrArr virtual addresses in
     * the tenant's DRAM-region VMAs and pimBaseHeapPtr a virtual
     * offset in a PIM-region VMA; the runtime resolves both through
     * the DCE-side TLB before bank grouping.
     */
    mmu::TenantId tenant = mmu::kNoTenant;
};

} // namespace core
} // namespace pimmmu

#endif // PIMMMU_CORE_PIM_MMU_OP_HH

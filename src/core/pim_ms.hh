/**
 * @file
 * PIM-aware Memory Scheduler (paper section IV-D, Algorithm 1).
 *
 * PIM-MS exploits the fact that per-PIM-core transfer targets are
 * mutually exclusive, so their memory transactions can be freely
 * reordered. It issues requests to all PIM channels in parallel and,
 * within a channel, walks banks in (bank, rank, bank-group) order so
 * successive column commands land in different bank groups (dodging
 * tCCD_L), one minimum-granularity access per visit.
 */

#ifndef PIMMMU_CORE_PIM_MS_HH
#define PIMMMU_CORE_PIM_MS_HH

#include <cstdint>
#include <vector>

#include "common/types.hh"
#include "pim/pim_geometry.hh"

namespace pimmmu {
namespace core {

/**
 * The scheduling order produced by Algorithm 1 over a set of target
 * banks, organized per channel with rotating cursors.
 */
class PimMs
{
  public:
    /**
     * @param geometry PIM subsystem shape
     * @param banks    flat bank indices participating in the transfer
     *                 (each appears once); slot i refers back to the
     *                 caller's stream i
     * @param now      simulated tick for trace lines (scheduler state
     *                 is time-independent)
     */
    PimMs(const device::PimGeometry &geometry,
          const std::vector<unsigned> &banks, Tick now = 0);

    /**
     * Sort the (streamSlot, bankIdx) pairs of one channel into the
     * Algorithm 1 issue order: bank outer, then rank, then bank group.
     */
    static std::vector<unsigned>
    algorithmOrder(const device::PimGeometry &geometry,
                   const std::vector<unsigned> &banks,
                   const std::vector<unsigned> &slots);

    unsigned numChannels() const
    {
        return static_cast<unsigned>(channelSlots_.size());
    }

    /** Stream slots of channel @p ch in Algorithm-1 order. */
    const std::vector<unsigned> &
    channelSlots(unsigned ch) const
    {
        return channelSlots_[ch];
    }

    /**
     * Round-robin channel pick for the next issue attempt; advances the
     * internal channel cursor.
     */
    unsigned
    nextChannel()
    {
        const unsigned ch = channelCursor_;
        channelCursor_ = (channelCursor_ + 1) % numChannels();
        return ch;
    }

    /** Per-channel rotating cursor over that channel's slots. */
    unsigned &cursor(unsigned ch, bool write)
    {
        return write ? writeCursor_[ch] : readCursor_[ch];
    }

  private:
    std::vector<std::vector<unsigned>> channelSlots_;
    std::vector<unsigned> readCursor_;
    std::vector<unsigned> writeCursor_;
    unsigned channelCursor_ = 0;
};

} // namespace core
} // namespace pimmmu

#endif // PIMMMU_CORE_PIM_MS_HH

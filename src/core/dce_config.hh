/**
 * @file
 * Configuration of the Data Copy Engine (paper Table I: 3.2 GHz,
 * 16 KB data buffer, 64 KB address buffer).
 */

#ifndef PIMMMU_CORE_DCE_CONFIG_HH
#define PIMMMU_CORE_DCE_CONFIG_HH

#include "common/types.hh"

namespace pimmmu {
namespace core {

/** DCE tunables. */
struct DceConfig
{
    std::uint64_t clockMhz = 3200;

    /** SRAM buffers (Table I). */
    std::uint64_t dataBufferBytes = 16 * kKiB;
    std::uint64_t addressBufferBytes = 64 * kKiB;

    /** Bytes of one address-buffer entry (Fig. 11: DRAM addr, PIM
     *  addr/core id, offset counter). */
    unsigned addressEntryBytes = 16;

    /** Memory requests the engine can issue per DCE cycle. */
    unsigned issueWidth = 4;

    /** Pipeline latency of the preprocessing (transpose) unit. */
    unsigned transposeLatencyCycles = 4;

    /**
     * Lines issued per stream visit before the scheduler rotates to
     * the next stream. Bursting preserves DRAM row locality on the
     * host side while the queues keep enough distinct banks in flight
     * for bank-group interleaving on the PIM side.
     */
    unsigned burstLines = 32;

    /**
     * Enable the PIM-aware Memory Scheduler. When disabled the engine
     * degrades to a conventional DMA channel: descriptors are processed
     * strictly in order with a shallow in-flight window (the "Base+D"
     * ablation point, paper Fig. 15).
     */
    bool usePimMs = true;

    /** In-flight request cap of the vanilla-DMA (no PIM-MS) mode. */
    unsigned dmaWindow = 12;

    /** Software-stack latencies (driver MMIO doorbell, interrupt). */
    Tick mmioDoorbellPs = 300 * kPsPerNs;
    Tick interruptPs = 2 * kPsPerUs;

    Tick periodPs() const { return periodPsFromMhz(clockMhz); }

    std::uint64_t
    dataBufferSlots() const
    {
        return dataBufferBytes / 64;
    }

    std::uint64_t
    addressBufferEntries() const
    {
        return addressBufferBytes / addressEntryBytes;
    }
};

} // namespace core
} // namespace pimmmu

#endif // PIMMMU_CORE_DCE_CONFIG_HH

/**
 * @file
 * The Data Copy Engine (paper section IV-C, Fig. 11).
 *
 * The DCE offloads DRAM<->PIM transfers entirely from the CPU. It holds
 * an address buffer of per-PIM-core stream descriptors, a 16 KB data
 * buffer that decouples the read and write sides, an AGU that derives
 * source/destination addresses from (base, offset), an on-the-fly
 * transpose unit, and the PIM-MS scheduler that picks which stream to
 * advance next.
 *
 * Dataflow for DRAM->PIM (Fig. 11 steps 1-7): PIM-MS selects an address
 * buffer entry -> AGU emits the next read -> the memory controller
 * services it -> data lands in the data buffer -> the preprocessing
 * unit transposes it -> the AGU emits the matching PIM write.
 */

#ifndef PIMMMU_CORE_DCE_HH
#define PIMMMU_CORE_DCE_HH

#include <array>
#include <deque>
#include <functional>
#include <memory>
#include <utility>
#include <vector>

#include "common/event_queue.hh"
#include "common/serialize.hh"
#include "common/stats.hh"
#include "core/dce_config.hh"
#include "core/pim_mmu_op.hh"
#include "core/pim_ms.hh"
#include "dram/memory_system.hh"
#include "pim/pim_geometry.hh"
#include "resilience/status.hh"

namespace pimmmu {

namespace resilience {
class Manager;
}

namespace telemetry {
namespace attribution {
class Recorder;
}
}

namespace core {

/**
 * One per-bank stream in the DCE's address buffer: the 8 per-DPU host
 * arrays feeding (or fed by) the bank's wire lines.
 */
struct BankStream
{
    unsigned bankIdx = 0;
    std::array<Addr, 8> hostBase{};
    Addr wireBase = 0;              //!< PIM physical address
    std::uint64_t totalLines = 0;   //!< host lines == wire lines
};

/** A fully prepared timing-plane transfer. */
struct DceTransfer
{
    XferDirection dir = XferDirection::DramToPim;
    std::vector<BankStream> streams;

    /**
     * Latency-attribution record backing this descriptor (0 = none
     * yet). PimMmuRuntime opens the record when the call enters the
     * driver so preprocessing is attributed; descriptors reaching the
     * engine without one (raw enqueue, memcpy chunks) get a record
     * opened at enqueue time.
     */
    std::uint64_t attribId = 0;

    /** The engine opened @c attribId itself (raw enqueue / memcpy
     *  paths) and closes it at completion; runtime-opened records stay
     *  open for interrupt delivery and retry accounting. */
    bool attribOwned = false;

    std::uint64_t
    totalLines() const
    {
        std::uint64_t total = 0;
        for (const auto &s : streams)
            total += s.totalLines;
        return total;
    }
};

/** The engine. */
class Dce
{
  public:
    /** Completion callback carrying the transfer's final status. */
    using CompletionFn = std::function<void(const resilience::Status &)>;

    Dce(EventQueue &eq, const DceConfig &config,
        dram::MemorySystem &mem, const device::PimGeometry &pimGeometry,
        resilience::Manager *res = nullptr);

    ~Dce();

    /**
     * Begin a transfer. @p onComplete fires when the last write's data
     * burst finishes (the driver layers interrupt latency on top).
     * @pre !busy()
     */
    void start(DceTransfer transfer, std::function<void()> onComplete);

    /**
     * Queue a transfer: starts immediately if the engine is idle,
     * otherwise runs when the preceding transfers complete — the
     * driver's descriptor ring. @return queue depth including this
     * transfer (1 = started immediately).
     */
    std::size_t enqueue(DceTransfer transfer,
                        std::function<void()> onComplete);

    /**
     * Validate a descriptor against the engine's capacity limits:
     * non-empty, no zero-line stream (which would hang the engine),
     * fits in the address buffer.
     */
    resilience::Status validate(const DceTransfer &transfer) const;

    /**
     * Validating enqueue. Rejections are returned immediately (the
     * descriptor is not queued and @p onDone never runs); accepted
     * transfers report their final status — Ok, or TransferStalled if
     * the watchdog exhausts its recovery budget — through @p onDone.
     * @p depth (optional) receives the queue depth, as enqueue().
     */
    resilience::Status enqueueChecked(DceTransfer transfer,
                                      CompletionFn onDone,
                                      std::size_t *depth = nullptr);

    bool busy() const { return active_ != nullptr; }

    std::size_t queuedTransfers() const { return pending_.size(); }

    /** Descriptors the engine currently owns: the active one plus the
     *  ring backlog behind it. */
    std::size_t ringDepth() const
    {
        return pending_.size() + (active_ ? 1 : 0);
    }

    /**
     * Ring-submission hook: fired with the new depth whenever a
     * descriptor enters the ring, starts, completes, or fails. A
     * batching layer (serving::Server) uses the downward edges to top
     * the ring back up to its target depth without polling. The
     * callback runs inside engine bookkeeping — it may enqueue new
     * descriptors (re-entrant enqueueChecked is safe) but must not
     * destroy the engine. One observer; pass nullptr to detach.
     */
    void setRingObserver(std::function<void(std::size_t)> observer)
    {
        ringObserver_ = std::move(observer);
    }

    /** Cumulative engine-active time, for the power model. */
    Tick busyPs() const { return busyPs_; }

    /**
     * One-line description of whatever the engine still owes: active
     * transfer progress, stuck streams, in-flight request counts and
     * buffer credits. Used by drained-queue diagnostics when a run
     * ends with a transfer incomplete.
     */
    std::string outstandingSummary() const;

    const DceConfig &config() const { return config_; }
    stats::Group &stats() { return stats_; }

    /**
     * Checkpoint the engine's persistent state (busy time, descriptor
     * id counter, stats). Only valid with an empty ring: active and
     * pending descriptors hold completion closures, which cannot be
     * serialized — snapshots are taken at quiesced points instead.
     */
    void saveState(serialize::ByteSink &out) const;

    /** Inverse of saveState. @return false on a malformed payload. */
    bool restoreState(serialize::ByteSource &in);

  private:
    struct StreamState
    {
        std::uint64_t readsIssued = 0;
        std::uint64_t writeCredits = 0; //!< transposed, ready to write
        std::uint64_t writesIssued = 0;
        std::uint64_t writesDone = 0;
    };

    struct ActiveTransfer
    {
        DceTransfer transfer;
        std::vector<StreamState> state;
        std::unique_ptr<PimMs> scheduler; //!< null when PIM-MS disabled
        std::uint64_t linesRemaining = 0;
        CompletionFn onComplete;
        std::uint64_t id = 0;
        // Watchdog bookkeeping.
        std::uint64_t lastProgressMark = ~std::uint64_t{0};
        unsigned watchdogRestarts = 0;
        Tick enqueuedAt = 0;
        Tick startedAt = 0;
        Tick firstIssueAt = kTickMax;
        /** Last completion seen, bounding watchdog-stall windows. */
        Tick lastProgressAt = 0;
        /** MemorySystem::refreshBusyPsTotal at engine start, diffed at
         *  completion for the refresh carve-out. */
        Tick refreshBusyAtStart = 0;
        // Per-channel burst budgets for the PIM-MS cursors.
        std::vector<unsigned> readBurstLeft;
        std::vector<unsigned> writeBurstLeft;
        // Vanilla-DMA / chunked-memcpy cursors.
        std::size_t dmaReadStream = 0;
        std::size_t dmaWriteStream = 0;
        unsigned dmaReadBurstLeft = 0;
        unsigned dmaWriteBurstLeft = 0;
    };

    struct PendingTransfer
    {
        DceTransfer transfer;
        CompletionFn onComplete;
        Tick enqueuedAt = 0;
        std::uint64_t id = 0;
    };

    void beginTransfer(DceTransfer transfer, CompletionFn onComplete,
                       Tick enqueuedAt, std::uint64_t id);
    void noteFirstIssue();
    bool tick();
    bool tryIssueWrite();
    bool tryIssueRead();
    bool issueWriteFor(std::size_t slot);
    bool issueReadFor(std::size_t slot);
    Addr readAddrOf(const BankStream &s, std::uint64_t k) const;
    Addr writeAddrOf(const BankStream &s, std::uint64_t k) const;
    unsigned inflight() const;
    void onReadComplete(std::size_t slot,
                        const dram::MemRequest &done);
    void onWriteComplete(std::size_t slot,
                         const dram::MemRequest &done);
    void finishIfDone();
    /** Per-channel service spans + flow chain for a finished record. */
    void emitAttributionTrace(Tick now);
    void sampleRingDepth();
    void startNextPending();
    void armWatchdog(Tick delay, std::uint64_t xid);
    void onWatchdog(std::uint64_t xid);
    std::uint64_t progressMark() const;
    void failActive(resilience::Status status);

    EventQueue &eq_;
    DceConfig config_;
    dram::MemorySystem &mem_;
    device::PimGeometry pimGeom_;
    resilience::Manager *res_;
    Ticker ticker_;

    std::unique_ptr<ActiveTransfer> active_;
    std::deque<PendingTransfer> pending_;
    std::function<void(std::size_t)> ringObserver_;
    std::uint64_t freeDataSlots_;
    unsigned readsInflight_ = 0;
    unsigned writesInflight_ = 0;

    Tick busyPs_ = 0;
    std::uint64_t nextTransferId_ = 0;
    unsigned timelineTrack_ = 0;
    unsigned ringSeries_ = 0;
    unsigned inflightSeries_ = 0;
    /** This thread's attribution recorder, cached off the hot path. */
    telemetry::attribution::Recorder *rec_ = nullptr;
    stats::Group stats_;
};

} // namespace core
} // namespace pimmmu

#endif // PIMMMU_CORE_DCE_HH

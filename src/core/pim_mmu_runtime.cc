#include "core/pim_mmu_runtime.hh"

#include "common/stats_serialize.hh"

#include <algorithm>
#include <sstream>

#include "common/trace.hh"
#include "pim/host_transfer.hh"
#include "pim/transpose.hh"
#include "resilience/manager.hh"
#include "telemetry/attribution.hh"
#include "telemetry/stats_registry.hh"
#include "telemetry/timeline.hh"

namespace pimmmu {
namespace core {

PimMmuRuntime::PimMmuRuntime(EventQueue &eq, Dce &dce,
                             dram::MemorySystem &mem,
                             device::PimDevice &pim,
                             resilience::Manager *res,
                             const mmu::MmuConfig &mmuCfg)
    : eq_(eq), dce_(dce), mem_(mem), pim_(pim), res_(res),
      mmuCfg_(mmuCfg), stats_("pim_mmu")
{
    timelineTrack_ = telemetry::Timeline::global().track("pim-mmu");
    telemetry::StatsRegistry::global().add(stats_);
}

PimMmuRuntime::~PimMmuRuntime()
{
    telemetry::StatsRegistry::global().remove(stats_);
}

DceTransfer
PimMmuRuntime::buildDescriptor(const PimMmuOp &op) const
{
    const device::BankGrouping grouping =
        device::groupByBank(pim_.geometry(), op.pimIdArr,
                            op.dramAddrArr, op.sizePerPim,
                            op.pimBaseHeapPtr);
    return descriptorFrom(grouping, op);
}

DceTransfer
PimMmuRuntime::descriptorFrom(const device::BankGrouping &grouping,
                              const PimMmuOp &op) const
{
    const device::PimGeometry &geom = pim_.geometry();
    const Addr pimBase = mem_.systemMap().pimBase();
    const std::uint64_t wordStart =
        op.pimBaseHeapPtr / device::kWordBytes;

    DceTransfer transfer;
    transfer.dir = op.type;
    transfer.streams.reserve(grouping.banks.size());
    for (const auto &bank : grouping.banks) {
        BankStream stream;
        stream.bankIdx = bank.bankIdx;
        stream.hostBase = bank.hostBase;
        stream.wireBase = pimBase +
                          geom.bankRegionOffset(bank.bankIdx) +
                          wordStart * device::kBlockBytes;
        stream.totalLines = op.sizePerPim / device::kWordBytes;
        transfer.streams.push_back(stream);
    }
    return transfer;
}

void
PimMmuRuntime::functionalCopy(const PimMmuOp &op)
{
    const device::BankGrouping grouping = device::groupByBank(
        pim_.geometry(), op.pimIdArr, op.dramAddrArr, op.sizePerPim,
        op.pimBaseHeapPtr);
    device::functionalTransfer(mem_.store(), pim_,
                               op.type == XferDirection::DramToPim,
                               grouping, op.sizePerPim,
                               op.pimBaseHeapPtr);
}

void
PimMmuRuntime::transfer(const PimMmuOp &op,
                        std::function<void()> onComplete)
{
    CompletionFn cb;
    if (onComplete) {
        cb = [f = std::move(onComplete)](const resilience::Status &) {
            f();
        };
    }
    const auto status = transferChecked(op, std::move(cb));
    if (!status.ok())
        fatal("pim_mmu_transfer rejected: ", status.str());
}

mmu::Mmu &
PimMmuRuntime::mmu()
{
    if (!mmu_)
        mmu_ = std::make_unique<mmu::Mmu>(mmuCfg_);
    return *mmu_;
}

resilience::Status
PimMmuRuntime::resolveVirtual(PimMmuOp &op, Tick &xlatPs)
{
    if (op.type == XferDirection::DramToDram) {
        return resilience::Status::failure(
            resilience::ErrorCode::MalformedDescriptor,
            "virtual addressing covers DRAM<->PIM transfers only");
    }
    const bool toPim = op.type == XferDirection::DramToPim;
    mmu::Mmu &m = mmu();
    mmu::Translation xl;
    // Host side: each per-DPU array resolves independently (the
    // descriptor needs physical contiguity per stream, not across
    // streams). Dispatch trusts the VMA's declared region: a range
    // whose VMA says MemSpace::Pim is rejected here instead of being
    // re-tested against raw physical bounds downstream.
    for (std::size_t i = 0; i < op.dramAddrArr.size(); ++i) {
        auto st = m.translateRange(
            op.tenant, op.dramAddrArr[i], op.sizePerPim,
            toPim ? mmu::Access::Read : mmu::Access::Write,
            mapping::MemSpace::Dram, xl);
        if (!st.ok())
            return st;
        op.dramAddrArr[i] = xl.paddr;
        xlatPs += xl.modeledPs;
    }
    // Device side: the MRAM heap window is one shared VA range (the
    // same offset lands in every listed DPU's heap).
    auto st = m.translateRange(op.tenant, op.pimBaseHeapPtr,
                               op.sizePerPim,
                               toPim ? mmu::Access::Write
                                     : mmu::Access::Read,
                               mapping::MemSpace::Pim, xl);
    if (!st.ok())
        return st;
    op.pimBaseHeapPtr = xl.paddr;
    xlatPs += xl.modeledPs;
    op.tenant = mmu::kNoTenant;
    return resilience::Status{};
}

resilience::Status
PimMmuRuntime::transferChecked(const PimMmuOp &op,
                               CompletionFn onComplete)
{
    PimMmuOp effective = op;
    Tick xlatPs = 0;
    if (effective.tenant != mmu::kNoTenant) {
        const auto resolved = resolveVirtual(effective, xlatPs);
        if (!resolved.ok()) {
            stats_.counter("va_rejected") += 1;
            PIMMMU_TRACE_LOG(trace::Category::Xfer, eq_.now(),
                             "pim_mmu_transfer VA rejected: "
                                 << resolved.str());
            return resolved;
        }
        stats_.counter("va_transfers") += 1;
        stats_.counter("va_xlat_ps") += xlatPs;
    }
    if (res_ && res_->policy().maskFailedDpus) {
        // Probe PIM-core and correlated rank/channel failures first,
        // then excise every core on an out-of-service bank from the
        // scatter plan — including healthy siblings of a core that
        // just died, since transfers must cover whole banks.
        res_->probeKillSites(effective.pimIdArr, eq_.now());
        if (res_->maskedBanks() > 0) {
            std::vector<unsigned> ids;
            std::vector<Addr> addrs;
            ids.reserve(effective.pimIdArr.size());
            addrs.reserve(effective.dramAddrArr.size());
            for (std::size_t i = 0; i < effective.pimIdArr.size() &&
                                    i < effective.dramAddrArr.size();
                 ++i) {
                if (res_->dpuHealthy(effective.pimIdArr[i])) {
                    ids.push_back(effective.pimIdArr[i]);
                    addrs.push_back(effective.dramAddrArr[i]);
                }
            }
            if (ids.empty()) {
                res_->noteTransferFailed();
                return resilience::Status::failure(
                    resilience::ErrorCode::NoHealthyTargets,
                    "every listed PIM core is health-masked");
            }
            if (ids.size() != effective.pimIdArr.size()) {
                res_->noteTransferDegraded();
                effective.pimIdArr = std::move(ids);
                effective.dramAddrArr = std::move(addrs);
            }
        }
    }

    auto ctx = std::make_shared<CallCtx>();
    const auto grouped = device::groupByBankChecked(
        pim_.geometry(), effective.pimIdArr, effective.dramAddrArr,
        effective.sizePerPim, effective.pimBaseHeapPtr, ctx->grouping);
    if (!grouped.ok())
        return grouped;
    // Pre-validate against the engine's capacity so rejections are
    // synchronous rather than surfacing at doorbell time.
    const auto engine =
        dce_.validate(descriptorFrom(ctx->grouping, effective));
    if (!engine.ok())
        return engine;

    ctx->op = std::move(effective);
    ctx->calledAt = eq_.now();
    ctx->callId = nextCallId_++;
    ctx->onComplete = std::move(onComplete);
    ctx->tenant = op.tenant;
    ctx->xlatPs = xlatPs;
    auto &rec = telemetry::attribution::Recorder::global();
    if (rec.enabled()) {
        // The record spans the whole call, including retries; it opens
        // in Preprocess (marshalling, guarded functional copy, MMIO
        // doorbell) and the DCE moves it through the engine stages.
        ctx->attribId = rec.open(
            telemetry::attribution::Kind::Transfer, eq_.now(),
            telemetry::attribution::Stage::Preprocess,
            ctx->grouping.banks.empty()
                ? 0
                : ctx->grouping.banks.front().bankIdx,
            ctx->op.pimIdArr.size() * ctx->op.sizePerPim);
    }
    stats_.counter("transfers") += 1;
    stats_.counter("bytes") +=
        ctx->op.pimIdArr.size() * ctx->op.sizePerPim;
    PIMMMU_TRACE_LOG(trace::Category::Xfer, eq_.now(),
                     "pim_mmu_transfer: " << ctx->op.pimIdArr.size()
                                          << " PIM cores x "
                                          << ctx->op.sizePerPim
                                          << " B");
    if (fastForward_)
        runFastForward(ctx);
    else
        runAttempt(ctx);
    return resilience::Status{};
}

void
PimMmuRuntime::runFastForward(const std::shared_ptr<CallCtx> &ctx)
{
    // Same attempt semantics as runAttempt/onAttemptDone — guarded
    // functional copy, per-attempt detection, retry up to the policy
    // budget — but run synchronously with no timing-plane events. The
    // watchdog and DCE never see the descriptor (they only model
    // timing), so the only failure mode here is persistent corruption.
    const bool useGuard = res_ && res_->policy().detectionEnabled();
    const unsigned attempts =
        useGuard && res_->policy().retry ? res_->policy().maxRetries + 1
                                         : 1;
    resilience::Status status;
    for (unsigned attempt = 0; attempt < attempts; ++attempt) {
        resilience::XferGuard guard;
        if (useGuard)
            guard = res_->makeGuard();
        device::functionalTransfer(
            mem_.store(), pim_,
            ctx->op.type == XferDirection::DramToPim, ctx->grouping,
            ctx->op.sizePerPim, ctx->op.pimBaseHeapPtr,
            useGuard ? &guard : nullptr);
        if (!useGuard)
            break;
        res_->absorbGuard(guard);
        ctx->lastUncorrectedWords = guard.uncorrectedWords;
        if (guard.dataOk())
            break;
        if (attempt + 1 < attempts) {
            if (guard.uncorrectedWords > 0)
                res_->noteEccRetry();
            else
                res_->noteCrcRetry();
        } else {
            res_->noteTransferFailed();
            std::ostringstream os;
            os << "payload corrupt after " << attempts << " attempt(s)";
            status = resilience::Status::failure(
                resilience::ErrorCode::DataCorrupt, os.str());
        }
    }
    finishCall(ctx, std::move(status));
}

void
PimMmuRuntime::runAttempt(const std::shared_ptr<CallCtx> &ctx)
{
    // Each attempt re-marshals and re-rings the doorbell (a no-op
    // transition on the first attempt, ends Retry on later ones).
    telemetry::attribution::Recorder::global().enterStage(
        ctx->attribId, telemetry::attribution::Stage::Preprocess,
        eq_.now());
    // Functional plane: move the data now, across the modeled link
    // when detection is on.
    const bool useGuard = res_ && res_->policy().detectionEnabled();
    resilience::XferGuard guard;
    if (useGuard)
        guard = res_->makeGuard();
    device::functionalTransfer(
        mem_.store(), pim_, ctx->op.type == XferDirection::DramToPim,
        ctx->grouping, ctx->op.sizePerPim, ctx->op.pimBaseHeapPtr,
        useGuard ? &guard : nullptr);
    bool dataOk = true;
    if (useGuard) {
        res_->absorbGuard(guard);
        dataOk = guard.dataOk();
        ctx->lastUncorrectedWords = guard.uncorrectedWords;
    }

    // Driver: write the op through the MMIO BAR (doorbell), then start
    // the engine; completion raises an interrupt the driver services
    // before waking the requesting process.
    //
    // A virtually addressed op pays its TLB/walk time here, folded
    // into the doorbell delay (no extra event, so a zero-cost
    // translation stays event- and cycle-identical to the physical
    // path). Retries re-ring with the already-resolved descriptor and
    // pay nothing again.
    const DceConfig &cfg = dce_.config();
    const Tick xlatDelay = ctx->xlatCharged ? 0 : ctx->xlatPs;
    eq_.scheduleAfter(cfg.mmioDoorbellPs + xlatDelay, [this, ctx,
                                                       dataOk] {
        auto &tl = telemetry::Timeline::global();
        if (tl.enabled()) {
            tl.instant(timelineTrack_,
                       "doorbell#" + std::to_string(ctx->callId),
                       eq_.now());
        }
        DceTransfer desc = descriptorFrom(ctx->grouping, ctx->op);
        desc.attribId = ctx->attribId;
        const auto accepted = dce_.enqueueChecked(
            std::move(desc),
            [this, ctx, dataOk](const resilience::Status &dceStatus) {
                telemetry::attribution::Recorder::global().enterStage(
                    ctx->attribId,
                    telemetry::attribution::Stage::Interrupt,
                    eq_.now());
                eq_.scheduleAfter(
                    dce_.config().interruptPs,
                    [this, ctx, dataOk, dceStatus] {
                        onAttemptDone(ctx, dataOk, dceStatus);
                    });
            });
        PIMMMU_ASSERT(accepted.ok(),
                      "pre-validated descriptor rejected");
        if (!ctx->xlatCharged) {
            ctx->xlatCharged = true;
            if (ctx->xlatPs > 0) {
                // The doorbell-to-here window (Preprocess) absorbed
                // the translation delay above; carve exactly that
                // much into the TlbWalk bucket so the stage sum stays
                // conserved.
                telemetry::attribution::Recorder::global().carve(
                    ctx->attribId,
                    telemetry::attribution::Stage::Preprocess,
                    telemetry::attribution::Stage::TlbWalk,
                    ctx->xlatPs);
            }
        }
    });
}

void
PimMmuRuntime::onAttemptDone(const std::shared_ptr<CallCtx> &ctx,
                             bool dataOk,
                             const resilience::Status &dceStatus)
{
    if (dceStatus.ok() && dataOk) {
        finishCall(ctx, resilience::Status{});
        return;
    }
    // A failed attempt implies a resilience manager: without one there
    // is no detection (dataOk stays true) and no watchdog.
    const resilience::Policy &pol = res_->policy();
    if (pol.retry && ctx->attempt < pol.maxRetries) {
        ++ctx->attempt;
        if (dceStatus.ok()) {
            // Corrupt payload: attribute the retry to what detection
            // tripped — ECC budget exhaustion or the end-to-end CRC.
            if (ctx->lastUncorrectedWords > 0)
                res_->noteEccRetry();
            else
                res_->noteCrcRetry();
        }
        auto &tl = telemetry::Timeline::global();
        if (tl.enabled()) {
            tl.instant(timelineTrack_,
                       "retry#" + std::to_string(ctx->callId),
                       eq_.now());
        }
        auto &rec = telemetry::attribution::Recorder::global();
        rec.enterStage(ctx->attribId,
                       telemetry::attribution::Stage::Retry,
                       eq_.now());
        rec.noteRetry(ctx->attribId);
        PIMMMU_TRACE_LOG(trace::Category::Resil, eq_.now(),
                         "transfer retry #"
                             << ctx->callId << " attempt "
                             << ctx->attempt + 1 << " backoff "
                             << (pol.retryBackoffPs
                                 << std::min(ctx->attempt - 1, 10u))
                             << "ps");
        const Tick backoff = pol.retryBackoffPs
                             << std::min(ctx->attempt - 1, 10u);
        eq_.scheduleAfter(backoff,
                          [this, ctx] { runAttempt(ctx); });
        return;
    }
    res_->noteTransferFailed();
    if (!dceStatus.ok()) {
        finishCall(ctx, dceStatus);
        return;
    }
    std::ostringstream os;
    os << "payload corrupt after " << (ctx->attempt + 1)
       << " attempt(s)";
    finishCall(ctx, resilience::Status::failure(
                        resilience::ErrorCode::DataCorrupt, os.str()));
}

void
PimMmuRuntime::finishCall(const std::shared_ptr<CallCtx> &ctx,
                          resilience::Status status)
{
    const Tick now = eq_.now();
    stats_.average("e2e_us").sample(
        static_cast<double>(now - ctx->calledAt) / 1e6);
    auto &tl = telemetry::Timeline::global();
    if (tl.enabled()) {
        std::string name = "transfer#" + std::to_string(ctx->callId);
        if (!status.ok())
            name += "!failed";
        tl.span(timelineTrack_, name, ctx->calledAt, now);
        if (ctx->attribId != 0) {
            // Anchor the descriptor's causal flow on the call span:
            // start where the runtime accepted the call, end where the
            // interrupt woke the caller (the DCE added the middle).
            tl.flowStart(timelineTrack_, name, ctx->calledAt,
                         ctx->attribId);
            tl.flowEnd(timelineTrack_, name, now, ctx->attribId);
        }
    }
    telemetry::attribution::Recorder::global().close(
        ctx->attribId, now, !status.ok());
    if (ctx->onComplete)
        ctx->onComplete(status);
}

PimMmuRequestThread::PimMmuRequestThread(
    PimMmuRuntime &runtime, PimMmuOp op,
    std::function<void()> onComplete)
    : runtime_(runtime), op_(std::move(op))
{
    if (onComplete) {
        onComplete_ = [f = std::move(onComplete)](
                          const resilience::Status &) { f(); };
    }
}

PimMmuRequestThread::PimMmuRequestThread(
    PimMmuRuntime &runtime, PimMmuOp op,
    PimMmuRuntime::CompletionFn onComplete)
    : runtime_(runtime), op_(std::move(op)),
      onComplete_(std::move(onComplete))
{
}

unsigned
PimMmuRequestThread::step(cpu::Core &core)
{
    switch (state_) {
      case State::Marshal: {
        state_ = State::Sleeping;
        cpu::Cpu &cpu = core.cpu();
        const auto status = runtime_.transferChecked(
            op_, [this, &cpu](const resilience::Status &s) {
                state_ = State::Done;
                if (onComplete_)
                    onComplete_(s);
                cpu.wakeThread(*this);
            });
        if (!status.ok()) {
            // Rejected synchronously: the callback will never fire.
            state_ = State::Done;
            if (onComplete_)
                onComplete_(status);
        }
        // Descriptor marshalling: a handful of cycles per PIM core.
        return static_cast<unsigned>(20 * op_.pimIdArr.size() + 500);
      }
      case State::Sleeping:
        return 0; // process sleeps until the interrupt
      case State::Done:
        return 0;
    }
    panic("bad state");
}

void
PimMmuRuntime::saveState(serialize::ByteSink &out) const
{
    out.u64(nextCallId_);
    out.boolean(mmu_ != nullptr);
    if (mmu_)
        mmu_->saveState(out);
    stats::saveGroup(out, stats_);
}

bool
PimMmuRuntime::restoreState(serialize::ByteSource &in)
{
    nextCallId_ = in.u64();
    if (in.boolean()) {
        // Instantiate-on-restore mirrors instantiate-on-first-use: a
        // snapshot with MMU state forces the layer into existence.
        if (!mmu().restoreState(in))
            return false;
    }
    return stats::restoreGroup(in, stats_);
}

} // namespace core
} // namespace pimmmu

#include "core/pim_mmu_runtime.hh"

#include "common/trace.hh"
#include "pim/host_transfer.hh"
#include "pim/transpose.hh"
#include "telemetry/stats_registry.hh"
#include "telemetry/timeline.hh"

namespace pimmmu {
namespace core {

PimMmuRuntime::PimMmuRuntime(EventQueue &eq, Dce &dce,
                             dram::MemorySystem &mem,
                             device::PimDevice &pim)
    : eq_(eq), dce_(dce), mem_(mem), pim_(pim), stats_("pim_mmu")
{
    timelineTrack_ = telemetry::Timeline::global().track("pim-mmu");
    telemetry::StatsRegistry::global().add(stats_);
}

PimMmuRuntime::~PimMmuRuntime()
{
    telemetry::StatsRegistry::global().remove(stats_);
}

DceTransfer
PimMmuRuntime::buildDescriptor(const PimMmuOp &op) const
{
    const device::PimGeometry &geom = pim_.geometry();
    const device::BankGrouping grouping =
        device::groupByBank(geom, op.pimIdArr, op.dramAddrArr,
                            op.sizePerPim, op.pimBaseHeapPtr);

    const Addr pimBase = mem_.systemMap().pimBase();
    const std::uint64_t wordStart =
        op.pimBaseHeapPtr / device::kWordBytes;

    DceTransfer transfer;
    transfer.dir = op.type;
    transfer.streams.reserve(grouping.banks.size());
    for (const auto &bank : grouping.banks) {
        BankStream stream;
        stream.bankIdx = bank.bankIdx;
        stream.hostBase = bank.hostBase;
        stream.wireBase = pimBase +
                          geom.bankRegionOffset(bank.bankIdx) +
                          wordStart * device::kBlockBytes;
        stream.totalLines = op.sizePerPim / device::kWordBytes;
        transfer.streams.push_back(stream);
    }
    return transfer;
}

void
PimMmuRuntime::functionalCopy(const PimMmuOp &op)
{
    const device::BankGrouping grouping = device::groupByBank(
        pim_.geometry(), op.pimIdArr, op.dramAddrArr, op.sizePerPim,
        op.pimBaseHeapPtr);
    device::functionalTransfer(mem_.store(), pim_,
                               op.type == XferDirection::DramToPim,
                               grouping, op.sizePerPim,
                               op.pimBaseHeapPtr);
}

void
PimMmuRuntime::transfer(const PimMmuOp &op,
                        std::function<void()> onComplete)
{
    DceTransfer descriptor = buildDescriptor(op);
    functionalCopy(op);
    PIMMMU_TRACE_LOG(trace::Category::Xfer, eq_.now(),
                     "pim_mmu_transfer: " << op.pimIdArr.size()
                                          << " PIM cores x "
                                          << op.sizePerPim << " B");

    const DceConfig &cfg = dce_.config();
    const Tick calledAt = eq_.now();
    const std::uint64_t callId = nextCallId_++;
    stats_.counter("transfers") += 1;
    stats_.counter("bytes") += op.pimIdArr.size() * op.sizePerPim;
    // Driver: write the op through the MMIO BAR (doorbell), then start
    // the engine; completion raises an interrupt the driver services
    // before waking the requesting process.
    eq_.scheduleAfter(
        cfg.mmioDoorbellPs,
        [this, calledAt, callId, descriptor = std::move(descriptor),
         onComplete = std::move(onComplete)]() mutable {
            auto &tl = telemetry::Timeline::global();
            if (tl.enabled())
                tl.instant(timelineTrack_,
                           "doorbell#" + std::to_string(callId),
                           eq_.now());
            dce_.enqueue(
                std::move(descriptor),
                [this, calledAt, callId,
                 onComplete = std::move(onComplete)] {
                    eq_.scheduleAfter(
                        dce_.config().interruptPs,
                        [this, calledAt, callId,
                         onComplete = std::move(onComplete)] {
                            const Tick now = eq_.now();
                            stats_.average("e2e_us").sample(
                                static_cast<double>(now - calledAt) /
                                1e6);
                            auto &tl = telemetry::Timeline::global();
                            if (tl.enabled())
                                tl.span(timelineTrack_,
                                        "transfer#" +
                                            std::to_string(callId),
                                        calledAt, now);
                            if (onComplete)
                                onComplete();
                        });
                });
        });
}

PimMmuRequestThread::PimMmuRequestThread(
    PimMmuRuntime &runtime, PimMmuOp op,
    std::function<void()> onComplete)
    : runtime_(runtime), op_(std::move(op)),
      onComplete_(std::move(onComplete))
{
}

unsigned
PimMmuRequestThread::step(cpu::Core &core)
{
    switch (state_) {
      case State::Marshal: {
        state_ = State::Sleeping;
        cpu::Cpu &cpu = core.cpu();
        runtime_.transfer(op_, [this, &cpu] {
            state_ = State::Done;
            if (onComplete_)
                onComplete_();
            cpu.wakeThread(*this);
        });
        // Descriptor marshalling: a handful of cycles per PIM core.
        return static_cast<unsigned>(20 * op_.pimIdArr.size() + 500);
      }
      case State::Sleeping:
        return 0; // process sleeps until the interrupt
      case State::Done:
        return 0;
    }
    panic("bad state");
}

} // namespace core
} // namespace pimmmu

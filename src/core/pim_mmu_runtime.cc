#include "core/pim_mmu_runtime.hh"

#include "common/trace.hh"
#include "pim/host_transfer.hh"
#include "pim/transpose.hh"

namespace pimmmu {
namespace core {

PimMmuRuntime::PimMmuRuntime(EventQueue &eq, Dce &dce,
                             dram::MemorySystem &mem,
                             device::PimDevice &pim)
    : eq_(eq), dce_(dce), mem_(mem), pim_(pim)
{
}

DceTransfer
PimMmuRuntime::buildDescriptor(const PimMmuOp &op) const
{
    const device::PimGeometry &geom = pim_.geometry();
    const device::BankGrouping grouping =
        device::groupByBank(geom, op.pimIdArr, op.dramAddrArr,
                            op.sizePerPim, op.pimBaseHeapPtr);

    const Addr pimBase = mem_.systemMap().pimBase();
    const std::uint64_t wordStart =
        op.pimBaseHeapPtr / device::kWordBytes;

    DceTransfer transfer;
    transfer.dir = op.type;
    transfer.streams.reserve(grouping.banks.size());
    for (const auto &bank : grouping.banks) {
        BankStream stream;
        stream.bankIdx = bank.bankIdx;
        stream.hostBase = bank.hostBase;
        stream.wireBase = pimBase +
                          geom.bankRegionOffset(bank.bankIdx) +
                          wordStart * device::kBlockBytes;
        stream.totalLines = op.sizePerPim / device::kWordBytes;
        transfer.streams.push_back(stream);
    }
    return transfer;
}

void
PimMmuRuntime::functionalCopy(const PimMmuOp &op)
{
    const device::BankGrouping grouping = device::groupByBank(
        pim_.geometry(), op.pimIdArr, op.dramAddrArr, op.sizePerPim,
        op.pimBaseHeapPtr);
    device::functionalTransfer(mem_.store(), pim_,
                               op.type == XferDirection::DramToPim,
                               grouping, op.sizePerPim,
                               op.pimBaseHeapPtr);
}

void
PimMmuRuntime::transfer(const PimMmuOp &op,
                        std::function<void()> onComplete)
{
    DceTransfer descriptor = buildDescriptor(op);
    functionalCopy(op);
    PIMMMU_TRACE_LOG(trace::Category::Xfer, eq_.now(),
                     "pim_mmu_transfer: " << op.pimIdArr.size()
                                          << " PIM cores x "
                                          << op.sizePerPim << " B");

    const DceConfig &cfg = dce_.config();
    // Driver: write the op through the MMIO BAR (doorbell), then start
    // the engine; completion raises an interrupt the driver services
    // before waking the requesting process.
    eq_.scheduleAfter(
        cfg.mmioDoorbellPs,
        [this, descriptor = std::move(descriptor),
         onComplete = std::move(onComplete)]() mutable {
            dce_.enqueue(std::move(descriptor),
                         [this, onComplete = std::move(onComplete)] {
                             eq_.scheduleAfter(
                                 dce_.config().interruptPs,
                                 [onComplete = std::move(onComplete)] {
                                     if (onComplete)
                                         onComplete();
                                 });
                         });
        });
}

PimMmuRequestThread::PimMmuRequestThread(
    PimMmuRuntime &runtime, PimMmuOp op,
    std::function<void()> onComplete)
    : runtime_(runtime), op_(std::move(op)),
      onComplete_(std::move(onComplete))
{
}

unsigned
PimMmuRequestThread::step(cpu::Core &core)
{
    switch (state_) {
      case State::Marshal: {
        state_ = State::Sleeping;
        cpu::Cpu &cpu = core.cpu();
        runtime_.transfer(op_, [this, &cpu] {
            state_ = State::Done;
            if (onComplete_)
                onComplete_();
            cpu.wakeThread(*this);
        });
        // Descriptor marshalling: a handful of cycles per PIM core.
        return static_cast<unsigned>(20 * op_.pimIdArr.size() + 500);
      }
      case State::Sleeping:
        return 0; // process sleeps until the interrupt
      case State::Done:
        return 0;
    }
    panic("bad state");
}

} // namespace core
} // namespace pimmmu

#include "sim/stream_driver.hh"

namespace pimmmu {
namespace sim {

StreamDriver::StreamDriver(EventQueue &eq, dram::MemorySystem &mem,
                           unsigned maxOutstanding)
    : eq_(eq), mem_(mem), maxOutstanding_(maxOutstanding)
{
    mem_.onDrain([this] { pump(); });
}

void
StreamDriver::pump()
{
    if (!addrs_)
        return;
    while (outstanding_ < maxOutstanding_ &&
           nextIdx_ < addrs_->size()) {
        const Addr addr = (*addrs_)[nextIdx_];
        if (!mem_.canAccept(addr, write_))
            return;
        dram::MemRequest req;
        req.paddr = addr;
        req.write = write_;
        req.onComplete = [this](const dram::MemRequest &) {
            --outstanding_;
            ++completed_;
            pump();
        };
        const bool ok = mem_.enqueue(std::move(req));
        PIMMMU_ASSERT(ok, "enqueue after canAccept failed");
        ++nextIdx_;
        ++outstanding_;
    }
}

StreamResult
StreamDriver::run(const std::vector<Addr> &addrs, bool write)
{
    PIMMMU_ASSERT(!addrs_, "StreamDriver::run is not reentrant");
    addrs_ = &addrs;
    write_ = write;
    nextIdx_ = 0;
    completed_ = 0;
    outstanding_ = 0;

    const Tick start = eq_.now();
    pump();
    while (completed_ < addrs.size()) {
        const bool progressed = eq_.step();
        PIMMMU_ASSERT(progressed, "event queue drained mid-stream");
    }
    StreamResult result;
    result.durationPs = eq_.now() - start;
    result.bytes = std::uint64_t{addrs.size()} * 64;
    addrs_ = nullptr;
    return result;
}

} // namespace sim
} // namespace pimmmu

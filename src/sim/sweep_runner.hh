/**
 * @file
 * Parallel driver for independent simulation jobs.
 *
 * A figure bench is a sweep: dozens of short, fully independent
 * System runs whose results are assembled into a table afterwards.
 * SweepRunner executes those jobs on a small thread pool, one System
 * per job, and reconciles the per-thread telemetry so the launching
 * thread observes the same aggregate state as a serial run:
 *
 *  - every simulator global that jobs touch is thread-local
 *    (StatsRegistry, Timeline, trace clock, fault-injection registry),
 *    so concurrent Systems cannot race on shared registries;
 *  - after each job the worker harvests that job's retired stats
 *    snapshots and timeline events;
 *  - after the pool drains, harvested telemetry is merged into the
 *    caller's thread-local registries in job-index order, so dumps are
 *    deterministic regardless of which worker ran which job.
 *
 * With one thread (or one job) the runner degrades to plain in-order
 * calls on the caller thread — bit-identical to the pre-pool benches.
 */

#ifndef PIMMMU_SIM_SWEEP_RUNNER_HH
#define PIMMMU_SIM_SWEEP_RUNNER_HH

#include <cstddef>
#include <functional>

namespace pimmmu {
namespace sim {

/**
 * Which slice of a sweep this process runs. Campaigns too large for
 * one host split a sweep across processes: each invocation gets the
 * same job list and a distinct (count, index) pair, runs only the jobs
 * it owns, and writes a partial result file; tools/benchmerge splices
 * the partials back into the unsharded output byte for byte.
 *
 * Ownership is round-robin by job index (j % count == index) so every
 * shard samples the whole parameter range — a contiguous split would
 * give one host all the expensive high-rate scenarios.
 */
struct ShardSpec
{
    unsigned count = 1; //!< total shards in the campaign
    unsigned index = 0; //!< this process's shard id, in [0, count)

    bool sharded() const { return count > 1; }
    bool ownsJob(std::size_t j) const { return j % count == index; }
};

class SweepRunner
{
  public:
    /**
     * @param threads worker count; 0 means one per hardware thread.
     */
    explicit SweepRunner(unsigned threads = 0);

    unsigned threads() const { return threads_; }

    /**
     * Restrict run() to the jobs @p shard owns. Job indices keep their
     * global meaning: telemetry prefixes and result slots still use
     * the full-sweep index, so partial outputs merge deterministically.
     */
    void setShard(ShardSpec shard);
    const ShardSpec &shard() const { return shard_; }

    /** Worker count chosen for threads == 0. */
    static unsigned defaultThreads();

    /**
     * Run fn(0) .. fn(jobCount-1), each job exactly once. Jobs must be
     * independent: they may build Systems, register stats and record
     * timeline events, but must not share mutable state with other
     * jobs (communicate results through per-job slots the caller owns,
     * e.g. a pre-sized vector indexed by the job id).
     *
     * On return, retired stats groups from every job are present in
     * the caller's StatsRegistry::global() in job order, and timeline
     * events are merged into the caller's Timeline::global(). When the
     * pool has more than one worker, merged timeline tracks get a
     * "job<N>/" prefix to keep per-job rows distinguishable.
     *
     * If any job throws, the remaining jobs still run; the first
     * exception by job index is rethrown after telemetry is merged.
     */
    void run(std::size_t jobCount,
             const std::function<void(std::size_t)> &fn);

  private:
    unsigned threads_;
    ShardSpec shard_;
};

} // namespace sim
} // namespace pimmmu

#endif // PIMMMU_SIM_SWEEP_RUNNER_HH

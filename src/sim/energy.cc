#include "sim/energy.hh"

namespace pimmmu {
namespace sim {

EnergyReport
computeEnergy(const PowerModel &model, const EnergySnapshot &from,
              const EnergySnapshot &to, unsigned totalChannels)
{
    const double dtSec =
        static_cast<double>(to.now - from.now) / 1e12;
    const double busySec =
        static_cast<double>(to.cpuBusyPs - from.cpuBusyPs) / 1e12;
    const double avxSec =
        static_cast<double>(to.avxBusyPs - from.avxBusyPs) / 1e12;
    const double dceSec =
        static_cast<double>(to.dceBusyPs - from.dceBusyPs) / 1e12;
    const double bytes =
        static_cast<double>((to.dramBytes - from.dramBytes) +
                            (to.pimBytes - from.pimBytes));

    EnergyReport report;
    report.cpuJ = model.packageIdleW * dtSec +
                  model.coreActiveW * busySec +
                  model.avxAdderW * avxSec;
    report.dramJ = model.dramPjPerByte * bytes * 1e-12 +
                   model.dramBackgroundWPerChannel * totalChannels *
                       dtSec;
    report.dceJ = model.dceActiveW * dceSec;
    return report;
}

double
sramAreaMm2(std::uint64_t bytes)
{
    // CACTI 6.5, 32 nm, single-ported SRAM: ~0.0106 mm^2 per KiB fits
    // the paper's 0.85 mm^2 for 80 KB of DCE buffers.
    return 0.0106 * static_cast<double>(bytes) / 1024.0;
}

} // namespace sim
} // namespace pimmmu

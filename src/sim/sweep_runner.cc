#include "sim/sweep_runner.hh"

#include <algorithm>
#include <atomic>
#include <exception>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/logging.hh"
#include "telemetry/attribution.hh"
#include "telemetry/stats_registry.hh"
#include "telemetry/timeline.hh"

namespace pimmmu {
namespace sim {

unsigned
SweepRunner::defaultThreads()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

SweepRunner::SweepRunner(unsigned threads)
    : threads_(threads == 0 ? defaultThreads() : threads)
{
}

void
SweepRunner::setShard(ShardSpec shard)
{
    if (shard.count == 0 || shard.index >= shard.count)
        fatal("shard index out of range");
    shard_ = shard;
}

void
SweepRunner::run(std::size_t jobCount,
                 const std::function<void(std::size_t)> &fn)
{
    if (jobCount == 0)
        return;

    // Global job indices this shard owns, ascending — so a one-shard
    // run owns everything and behaves exactly as before.
    std::vector<std::size_t> owned;
    owned.reserve(jobCount / shard_.count + 1);
    for (std::size_t j = 0; j < jobCount; ++j) {
        if (shard_.ownsJob(j))
            owned.push_back(j);
    }
    if (owned.empty())
        return;

    const unsigned workers = static_cast<unsigned>(
        std::min<std::size_t>(threads_, owned.size()));
    if (workers <= 1) {
        // Caller-thread fast path: telemetry accumulates directly in
        // the caller's registries, exactly like the pre-pool benches.
        for (std::size_t j : owned)
            fn(j);
        return;
    }

    struct JobResult
    {
        std::vector<stats::Group> retired;
        telemetry::Timeline timeline;
        telemetry::attribution::Recorder attribution;
        std::exception_ptr error;
    };
    std::vector<JobResult> results(owned.size());

    // Snapshot the caller's timeline configuration (enabled flag,
    // coalesce gap, track filter) so worker-thread timelines record
    // under the same policy. Same for the attribution recorder.
    telemetry::Timeline config;
    config.configureLike(telemetry::Timeline::global());
    telemetry::attribution::Recorder attribConfig;
    attribConfig.configureLike(
        telemetry::attribution::Recorder::global());

    std::atomic<std::size_t> next{0};
    auto worker = [&] {
        telemetry::Timeline::global().configureLike(config);
        telemetry::attribution::Recorder::global().configureLike(
            attribConfig);
        for (;;) {
            const std::size_t k =
                next.fetch_add(1, std::memory_order_relaxed);
            if (k >= owned.size())
                break;
            try {
                fn(owned[k]);
            } catch (...) {
                results[k].error = std::current_exception();
            }
            // Harvest this job's telemetry before the next job reuses
            // the worker's thread-local registries.
            results[k].retired =
                telemetry::StatsRegistry::global().takeRetired();
            results[k].timeline = telemetry::Timeline::global().take();
            results[k].attribution =
                telemetry::attribution::Recorder::global().take();
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned t = 0; t < workers; ++t)
        pool.emplace_back(worker);
    for (std::thread &t : pool)
        t.join();

    // Merge in job-index order: dumps come out deterministic no matter
    // how jobs were scheduled across workers. Prefixes use the global
    // job index so shard partials line up across processes.
    std::exception_ptr firstError;
    for (std::size_t k = 0; k < owned.size(); ++k) {
        telemetry::StatsRegistry::global().absorbRetired(
            std::move(results[k].retired));
        telemetry::Timeline::global().mergeFrom(
            std::move(results[k].timeline),
            "job" + std::to_string(owned[k]) + "/");
        telemetry::attribution::Recorder::global().mergeFrom(
            std::move(results[k].attribution),
            "job" + std::to_string(owned[k]) + "/");
        if (results[k].error && !firstError)
            firstError = results[k].error;
    }
    if (firstError)
        std::rethrow_exception(firstError);
}

} // namespace sim
} // namespace pimmmu

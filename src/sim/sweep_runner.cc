#include "sim/sweep_runner.hh"

#include <algorithm>
#include <atomic>
#include <exception>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "telemetry/attribution.hh"
#include "telemetry/stats_registry.hh"
#include "telemetry/timeline.hh"

namespace pimmmu {
namespace sim {

unsigned
SweepRunner::defaultThreads()
{
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : hw;
}

SweepRunner::SweepRunner(unsigned threads)
    : threads_(threads == 0 ? defaultThreads() : threads)
{
}

void
SweepRunner::run(std::size_t jobCount,
                 const std::function<void(std::size_t)> &fn)
{
    if (jobCount == 0)
        return;

    const unsigned workers =
        static_cast<unsigned>(std::min<std::size_t>(threads_, jobCount));
    if (workers <= 1) {
        // Caller-thread fast path: telemetry accumulates directly in
        // the caller's registries, exactly like the pre-pool benches.
        for (std::size_t j = 0; j < jobCount; ++j)
            fn(j);
        return;
    }

    struct JobResult
    {
        std::vector<stats::Group> retired;
        telemetry::Timeline timeline;
        telemetry::attribution::Recorder attribution;
        std::exception_ptr error;
    };
    std::vector<JobResult> results(jobCount);

    // Snapshot the caller's timeline configuration (enabled flag,
    // coalesce gap, track filter) so worker-thread timelines record
    // under the same policy. Same for the attribution recorder.
    telemetry::Timeline config;
    config.configureLike(telemetry::Timeline::global());
    telemetry::attribution::Recorder attribConfig;
    attribConfig.configureLike(
        telemetry::attribution::Recorder::global());

    std::atomic<std::size_t> next{0};
    auto worker = [&] {
        telemetry::Timeline::global().configureLike(config);
        telemetry::attribution::Recorder::global().configureLike(
            attribConfig);
        for (;;) {
            const std::size_t j =
                next.fetch_add(1, std::memory_order_relaxed);
            if (j >= jobCount)
                break;
            try {
                fn(j);
            } catch (...) {
                results[j].error = std::current_exception();
            }
            // Harvest this job's telemetry before the next job reuses
            // the worker's thread-local registries.
            results[j].retired =
                telemetry::StatsRegistry::global().takeRetired();
            results[j].timeline = telemetry::Timeline::global().take();
            results[j].attribution =
                telemetry::attribution::Recorder::global().take();
        }
    };

    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (unsigned t = 0; t < workers; ++t)
        pool.emplace_back(worker);
    for (std::thread &t : pool)
        t.join();

    // Merge in job-index order: dumps come out deterministic no matter
    // how jobs were scheduled across workers.
    std::exception_ptr firstError;
    for (std::size_t j = 0; j < jobCount; ++j) {
        telemetry::StatsRegistry::global().absorbRetired(
            std::move(results[j].retired));
        telemetry::Timeline::global().mergeFrom(
            std::move(results[j].timeline),
            "job" + std::to_string(j) + "/");
        telemetry::attribution::Recorder::global().mergeFrom(
            std::move(results[j].attribution),
            "job" + std::to_string(j) + "/");
        if (results[j].error && !firstError)
            firstError = results[j].error;
    }
    if (firstError)
        std::rethrow_exception(firstError);
}

} // namespace sim
} // namespace pimmmu

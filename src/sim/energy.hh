/**
 * @file
 * System power/energy model in the spirit of the paper's McPAT/CACTI
 * methodology (section V, 32 nm constants folded into component-level
 * wattages). Processor-side components dominate system energy during
 * transfers (paper Fig. 15(b)), so the model is CPU-centric: package
 * idle power, per-active-core power, an AVX-512 adder (AVX copy loops
 * are power hungry, Fig. 4), DCE active power, plus DRAM background and
 * per-byte dynamic energy.
 */

#ifndef PIMMMU_SIM_ENERGY_HH
#define PIMMMU_SIM_ENERGY_HH

#include <cstdint>

#include "common/types.hh"

namespace pimmmu {
namespace sim {

/**
 * Component wattages / energies. Calibrated so the baseline transfer
 * operating point matches paper Fig. 4 (~70 W with all 8 cores in the
 * AVX loop) while the package static share dominates — which is why
 * the paper's energy-efficiency gains track its latency gains.
 */
struct PowerModel
{
    double packageIdleW = 52.0;  //!< uncore + static + idle cores
    double coreActiveW = 2.0;    //!< per busy core
    double avxAdderW = 0.25;     //!< extra per core running AVX-512
    double dceActiveW = 0.8;     //!< DCE engaged (SRAM + logic)
    double dramPjPerByte = 150.0;
    double dramBackgroundWPerChannel = 0.7;
};

/** Cumulative activity counters at one instant. */
struct EnergySnapshot
{
    Tick now = 0;
    Tick cpuBusyPs = 0;   //!< sum over cores
    Tick avxBusyPs = 0;   //!< sum over cores
    Tick dceBusyPs = 0;
    std::uint64_t dramBytes = 0; //!< bus bytes, DRAM subsystem
    std::uint64_t pimBytes = 0;  //!< bus bytes, PIM subsystem
};

/** Energy spent between two snapshots, by component. */
struct EnergyReport
{
    double cpuJ = 0.0;
    double dramJ = 0.0;
    double dceJ = 0.0;

    double totalJ() const { return cpuJ + dramJ + dceJ; }

    /** GB moved per joule; the paper's energy-efficiency metric. */
    double
    gbPerJoule(std::uint64_t bytes) const
    {
        const double total = totalJ();
        return total > 0.0 ? (static_cast<double>(bytes) / 1e9) / total
                           : 0.0;
    }
};

/** Integrate the power model between two snapshots. */
EnergyReport computeEnergy(const PowerModel &model,
                           const EnergySnapshot &from,
                           const EnergySnapshot &to,
                           unsigned totalChannels);

/**
 * CACTI-style SRAM area estimate for the DCE buffers (section VI-C):
 * returns mm^2 at 32 nm for @p bytes of SRAM.
 */
double sramAreaMm2(std::uint64_t bytes);

} // namespace sim
} // namespace pimmmu

#endif // PIMMMU_SIM_ENERGY_HH

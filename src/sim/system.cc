#include "sim/system.hh"

#include <numeric>
#include <sstream>

#include "common/stats_serialize.hh"
#include "common/trace.hh"
#include "pim/host_transfer.hh"
#include "pim/transpose.hh"
#include "telemetry/stats_registry.hh"

namespace pimmmu {
namespace sim {

const char *
designPointName(DesignPoint dp)
{
    switch (dp) {
      case DesignPoint::Base:
        return "Base";
      case DesignPoint::BaseD:
        return "Base+D";
      case DesignPoint::BaseDH:
        return "Base+D+H";
      case DesignPoint::BaseDHP:
        return "Base+D+H+P";
      default:
        panic("bad design point");
    }
}

const char *
planeName(Plane plane)
{
    switch (plane) {
      case Plane::Timing:
        return "timing";
      case Plane::FastForward:
        return "fast-forward";
      default:
        panic("bad plane");
    }
}

SystemConfig
SystemConfig::paperTable1(DesignPoint design)
{
    SystemConfig cfg;
    // DRAM: 4 channels, 2 ranks per channel, DDR4-2400 (Table I).
    cfg.dramGeom.channels = 4;
    cfg.dramGeom.ranksPerChannel = 2;
    cfg.dramGeom.bankGroups = 4;
    cfg.dramGeom.banksPerGroup = 4;
    cfg.dramGeom.rows = 16384;
    cfg.dramGeom.columns = 128; // 8 KiB rows
    cfg.dramGeom.lineBytes = 64;
    // PIM: 4 channels, 2 ranks per channel, 512 PIM cores.
    cfg.pimGeom = device::PimGeometry::paperTable1();
    cfg.design = design;
    cfg.dce.usePimMs = (design == DesignPoint::BaseDHP);
    return cfg;
}

System::System(const SystemConfig &config) : config_(config)
{
    // Functional-plane code (host_transfer, PimDevice) has no event
    // queue reference; give trace lines and kernel spans our clock.
    trace::setClock(&eq_);

    const auto &dramTiming = dram::timingPreset(config_.dramSpeed);
    const auto &pimTiming = dram::timingPreset(config_.pimSpeed);

    map_ = config_.hetMap()
               ? mapping::makeHetMap(config_.dramGeom,
                                     config_.pimGeom.banks)
               : mapping::makeBaselineMap(config_.dramGeom,
                                          config_.pimGeom.banks);
    mem_ = std::make_unique<dram::MemorySystem>(eq_, *map_, dramTiming,
                                                pimTiming, config_.mc);
    // Host buffers are virtually contiguous but physically scattered
    // at huge-page granularity, as on a real machine.
    if (config_.scatterHostFrames)
        mem_->enableScatter();
    pim_ = std::make_unique<device::PimDevice>(config_.pimGeom);
    if (config_.useLlc) {
        cache::CacheConfig llcCfg = config_.llc;
        llcCfg.cpuPeriodPs = config_.cpu.periodPs();
        llc_ = std::make_unique<cache::Cache>(eq_, llcCfg, *mem_);
    }
    cpu_ = std::make_unique<cpu::Cpu>(eq_, config_.cpu, *mem_,
                                      llc_.get());

    // Only stand up the resilience manager (and its stats group) when
    // the policy enables something: default systems stay bit-identical.
    // The domain map teaches it how flat bank indices fold into ranks
    // and channels so correlated failures mask whole domains.
    if (config_.resilience.anyEnabled()) {
        resilience::DomainMap domains;
        domains.numBanks = config_.pimGeom.numBanks();
        domains.banksPerRank = config_.pimGeom.banks.banksPerRank();
        domains.ranksPerChannel =
            config_.pimGeom.banks.ranksPerChannel;
        domains.chipsPerRank = config_.pimGeom.chipsPerRank;
        resilience_ = std::make_unique<resilience::Manager>(
            config_.resilience, domains);
    }

    core::DceConfig dceCfg = config_.dce;
    dceCfg.usePimMs = config_.usePimMs();
    dce_ = std::make_unique<core::Dce>(eq_, dceCfg, *mem_,
                                       config_.pimGeom,
                                       resilience_.get());
    pimMmuRuntime_ = std::make_unique<core::PimMmuRuntime>(
        eq_, *dce_, *mem_, *pim_, resilience_.get(), config_.mmu);
    upmemRuntime_ = std::make_unique<upmem::UpmemRuntime>(
        eq_, *cpu_, *mem_, *pim_, resilience_.get());
}

System::~System()
{
    if (scrubStats_)
        telemetry::StatsRegistry::global().remove(*scrubStats_);
    if (ffStats_)
        telemetry::StatsRegistry::global().remove(*ffStats_);
    cpu_->shutdown();
    trace::clearClock(&eq_);
}

stats::Group &
System::ffStats()
{
    if (!ffStats_) {
        ffStats_ = std::make_unique<stats::Group>("ff");
        telemetry::StatsRegistry::global().add(*ffStats_);
    }
    return *ffStats_;
}

void
System::setPlane(Plane plane)
{
    if (plane == plane_)
        return;
    PlaneCheckpoint cp;
    cp.atPs = eq_.now();
    cp.from = plane_;
    cp.to = plane;
    stats::Group &ff = ffStats();
    cp.ffTransfers = ff.counterValue("transfers");
    cp.ffBytes = ff.counterValue("bytes");
    cp.ffMemcpys = ff.counterValue("memcpys");
    cp.memoryFnv = memoryFingerprint();
    planeCheckpoints_.push_back(cp);
    ++ff.counter("plane_switches");

    plane_ = plane;
    const bool fastForward = plane_ == Plane::FastForward;
    pimMmuRuntime_->setFastForward(fastForward);
    upmemRuntime_->setFastForward(fastForward);
    PIMMMU_TRACE_LOG(trace::Category::Xfer, eq_.now(),
                     "plane switch: " << planeName(cp.from) << " -> "
                                      << planeName(cp.to) << " (mem fnv "
                                      << cp.memoryFnv << ")");
}

void
System::saveOwnState(serialize::ByteSink &out) const
{
    out.u64(dramAllocTop_);
    out.u64(scrubScratch_);
    out.u64(contenderSeed_);
    out.u8(plane_ == Plane::FastForward ? 1 : 0);
    out.u64(planeCheckpoints_.size());
    for (const PlaneCheckpoint &cp : planeCheckpoints_) {
        out.u64(cp.atPs);
        out.u8(cp.from == Plane::FastForward ? 1 : 0);
        out.u8(cp.to == Plane::FastForward ? 1 : 0);
        out.u64(cp.ffTransfers);
        out.u64(cp.ffBytes);
        out.u64(cp.ffMemcpys);
        out.u64(cp.memoryFnv);
    }
    out.boolean(ffStats_ != nullptr);
    if (ffStats_)
        stats::saveGroup(out, *ffStats_);
    out.boolean(scrubStats_ != nullptr);
    if (scrubStats_)
        stats::saveGroup(out, *scrubStats_);
}

bool
System::restoreOwnState(serialize::ByteSource &in)
{
    dramAllocTop_ = in.u64();
    scrubScratch_ = in.u64();
    contenderSeed_ = static_cast<unsigned>(in.u64());
    const Plane plane =
        in.u8() == 1 ? Plane::FastForward : Plane::Timing;
    planeCheckpoints_.clear();
    const std::uint64_t numSwitches = in.u64();
    for (std::uint64_t i = 0; i < numSwitches && in.ok(); ++i) {
        PlaneCheckpoint cp;
        cp.atPs = in.u64();
        cp.from = in.u8() == 1 ? Plane::FastForward : Plane::Timing;
        cp.to = in.u8() == 1 ? Plane::FastForward : Plane::Timing;
        cp.ffTransfers = in.u64();
        cp.ffBytes = in.u64();
        cp.ffMemcpys = in.u64();
        cp.memoryFnv = in.u64();
        planeCheckpoints_.push_back(cp);
    }
    if (in.boolean()) {
        if (!stats::restoreGroup(in, ffStats()))
            return false;
    }
    if (in.boolean()) {
        if (!scrubStats_) {
            scrubStats_ = std::make_unique<stats::Group>("scrub");
            telemetry::StatsRegistry::global().add(*scrubStats_);
        }
        if (!stats::restoreGroup(in, *scrubStats_))
            return false;
    }
    // Propagate the plane directly: the original transitions are
    // already in planeCheckpoints_, so this must not record a new one.
    plane_ = plane;
    const bool fastForward = plane_ == Plane::FastForward;
    pimMmuRuntime_->setFastForward(fastForward);
    upmemRuntime_->setFastForward(fastForward);
    return in.ok();
}

std::uint64_t
System::memoryFingerprint() const
{
    std::uint64_t h = mem_->store().fingerprint();
    auto mix = [&h](const void *data, std::size_t bytes) {
        const auto *p = static_cast<const std::uint8_t *>(data);
        for (std::size_t i = 0; i < bytes; ++i) {
            h ^= p[i];
            h *= 0x100000001b3ull;
        }
    };
    for (unsigned d = 0; d < pim_->numDpus(); ++d) {
        const device::Dpu &dpu = pim_->dpu(d);
        // Trim trailing zero bytes: untouched MRAM reads as zero, so
        // the digest must not depend on how far storage happened to
        // grow in one plane vs. the other.
        std::uint64_t touched = dpu.mramTouchedBytes();
        const std::uint8_t *bytes = dpu.mramData();
        while (touched > 0 && bytes[touched - 1] == 0)
            --touched;
        if (touched == 0)
            continue;
        mix(&d, sizeof(d));
        mix(&touched, sizeof(touched));
        mix(bytes, touched);
    }
    return h;
}

Addr
System::allocDram(std::uint64_t bytes, std::uint64_t align)
{
    PIMMMU_ASSERT(isPowerOfTwo(align), "alignment must be a power of 2");
    const Addr base = roundUp(dramAllocTop_, align);
    if (base + bytes > map_->dramCapacity())
        fatal("out of simulated DRAM (", bytes, " bytes requested)");
    dramAllocTop_ = base + bytes;
    return base;
}

bool
System::runUntil(const std::function<bool()> &pred, Tick limitPs)
{
    while (!pred()) {
        if (eq_.now() > limitPs)
            return false;
        if (!eq_.step())
            return pred();
    }
    return true;
}

EnergySnapshot
System::snapshot() const
{
    EnergySnapshot snap;
    snap.now = eq_.now();
    snap.cpuBusyPs = cpu_->totalBusyPs();
    snap.avxBusyPs = cpu_->totalAvxBusyPs();
    snap.dceBusyPs = dce_->busyPs();
    snap.dramBytes = mem_->dramBytesMoved();
    snap.pimBytes = mem_->pimBytesMoved();
    return snap;
}

unsigned
System::totalChannels() const
{
    return mem_->dramChannels() + mem_->pimChannels();
}

std::shared_ptr<AsyncTransfer>
System::startSoftwareTransfer(core::XferDirection dir,
                              const std::vector<unsigned> &dpuIds,
                              const std::vector<Addr> &hostAddrs,
                              std::uint64_t bytesPerDpu, Addr heapOffset)
{
    auto xfer = std::make_shared<AsyncTransfer>();
    xfer->startPs = eq_.now();
    xfer->bytes = bytesPerDpu * dpuIds.size();
    if (plane_ == Plane::FastForward) {
        ++ffStats().counter("transfers");
        ffStats().counter("bytes") += xfer->bytes;
    }
    upmemRuntime_->pushXfer(dir == core::XferDirection::DramToPim
                                ? upmem::XferKind::ToDpu
                                : upmem::XferKind::FromDpu,
                            dpuIds, hostAddrs, bytesPerDpu, heapOffset,
                            [this, xfer] {
                                xfer->done = true;
                                xfer->endPs = eq_.now();
                            });
    return xfer;
}

std::shared_ptr<AsyncTransfer>
System::startDceTransfer(core::PimMmuOp op)
{
    auto xfer = std::make_shared<AsyncTransfer>();
    xfer->startPs = eq_.now();
    xfer->bytes = op.sizePerPim * op.pimIdArr.size();
    if (op.tenant != mmu::kNoTenant) {
        // Keep the submission's virtual identity around: by the time a
        // stall is diagnosed the descriptor only holds physical
        // addresses, which is exactly the wrong level to debug a bad
        // mapping from.
        std::ostringstream os;
        os << "submitted by tenant " << op.tenant << " (va 0x"
           << std::hex
           << (op.dramAddrArr.empty() ? Addr{0}
                                      : op.dramAddrArr.front())
           << ", heap va 0x" << op.pimBaseHeapPtr << std::dec << ")";
        xfer->context = os.str();
    }

    if (plane_ == Plane::FastForward) {
        // No requesting process, no doorbell: the runtime's
        // fast-forward loop completes (or rejects) before returning.
        ++ffStats().counter("transfers");
        ffStats().counter("bytes") += xfer->bytes;
        const auto status = pimMmuRuntime_->transferChecked(
            op, [this, xfer](const resilience::Status &s) {
                xfer->status = s;
                xfer->done = true;
                xfer->endPs = eq_.now();
            });
        if (!status.ok()) {
            xfer->status = status;
            xfer->done = true;
            xfer->endPs = eq_.now();
        }
        return xfer;
    }

    auto thread = std::make_shared<core::PimMmuRequestThread>(
        *pimMmuRuntime_, std::move(op),
        core::PimMmuRuntime::CompletionFn(
            [this, xfer](const resilience::Status &s) {
                xfer->status = s;
                xfer->done = true;
                xfer->endPs = eq_.now();
            }));
    cpu_->runJob({thread}, nullptr);
    return xfer;
}

std::shared_ptr<AsyncTransfer>
System::startTransfer(core::XferDirection dir, unsigned numDpus,
                      std::uint64_t bytesPerDpu, Addr heapOffset)
{
    PIMMMU_ASSERT(numDpus > 0 && numDpus <= pim_->numDpus(),
                  "bad DPU count");
    std::vector<unsigned> dpuIds(numDpus);
    std::iota(dpuIds.begin(), dpuIds.end(), 0u);

    // One contiguous host allocation partitioned per DPU (Fig. 10).
    const Addr base = allocDram(std::uint64_t{numDpus} * bytesPerDpu);
    std::vector<Addr> hostAddrs(numDpus);
    for (unsigned i = 0; i < numDpus; ++i)
        hostAddrs[i] = base + std::uint64_t{i} * bytesPerDpu;

    if (config_.useDce()) {
        core::PimMmuOp op;
        op.type = dir;
        op.sizePerPim = bytesPerDpu;
        op.dramAddrArr = hostAddrs;
        op.pimIdArr = dpuIds;
        op.pimBaseHeapPtr = heapOffset;
        return startDceTransfer(std::move(op));
    }
    return startSoftwareTransfer(dir, dpuIds, hostAddrs, bytesPerDpu,
                                 heapOffset);
}

std::shared_ptr<AsyncTransfer>
System::startTransfer(core::PimMmuOp op)
{
    PIMMMU_ASSERT(config_.useDce(),
                  "descriptor submission requires a DCE design point");
    return startDceTransfer(std::move(op));
}

TransferStats
System::finishStats(const AsyncTransfer &xfer,
                    const EnergySnapshot &before,
                    const std::vector<std::uint64_t> &dramB,
                    const std::vector<std::uint64_t> &pimB)
{
    TransferStats stats;
    stats.startPs = xfer.startPs;
    stats.endPs = xfer.endPs;
    stats.bytes = xfer.bytes;
    const EnergySnapshot after = snapshot();
    stats.energy =
        computeEnergy(config_.power, before, after, totalChannels());
    const double durSec =
        static_cast<double>(stats.durationPs()) / 1e12;
    if (durSec > 0.0) {
        stats.avgActiveCores =
            static_cast<double>(after.cpuBusyPs - before.cpuBusyPs) /
            static_cast<double>(stats.durationPs());
    }
    for (unsigned ch = 0; ch < mem_->dramChannels(); ++ch) {
        stats.dramChannelGbps.push_back(gbPerSec(
            mem_->dramController(ch).bytesMoved() - dramB[ch],
            stats.durationPs()));
    }
    for (unsigned ch = 0; ch < mem_->pimChannels(); ++ch) {
        stats.pimChannelGbps.push_back(gbPerSec(
            mem_->pimController(ch).bytesMoved() - pimB[ch],
            stats.durationPs()));
    }
    return stats;
}

TransferStats
System::runTransfer(core::XferDirection dir, unsigned numDpus,
                    std::uint64_t bytesPerDpu, Addr heapOffset)
{
    const EnergySnapshot before = snapshot();
    std::vector<std::uint64_t> dramB, pimB;
    for (unsigned ch = 0; ch < mem_->dramChannels(); ++ch)
        dramB.push_back(mem_->dramController(ch).bytesMoved());
    for (unsigned ch = 0; ch < mem_->pimChannels(); ++ch)
        pimB.push_back(mem_->pimController(ch).bytesMoved());

    auto xfer = startTransfer(dir, numDpus, bytesPerDpu, heapOffset);
    return measureTransfer(xfer, before, dramB, pimB);
}

TransferStats
System::runTransfer(core::PimMmuOp op)
{
    const EnergySnapshot before = snapshot();
    std::vector<std::uint64_t> dramB, pimB;
    for (unsigned ch = 0; ch < mem_->dramChannels(); ++ch)
        dramB.push_back(mem_->dramController(ch).bytesMoved());
    for (unsigned ch = 0; ch < mem_->pimChannels(); ++ch)
        pimB.push_back(mem_->pimController(ch).bytesMoved());

    auto xfer = startTransfer(std::move(op));
    return measureTransfer(xfer, before, dramB, pimB);
}

TransferStats
System::measureTransfer(const std::shared_ptr<AsyncTransfer> &xfer,
                        const EnergySnapshot &before,
                        const std::vector<std::uint64_t> &dramB,
                        const std::vector<std::uint64_t> &pimB)
{
    // Run in 100 us windows and track instantaneous PIM-channel load
    // imbalance (max channel bytes / mean channel bytes per window).
    const Tick window = 100 * kPsPerUs;
    std::vector<std::uint64_t> prev(mem_->pimChannels());
    for (unsigned ch = 0; ch < mem_->pimChannels(); ++ch)
        prev[ch] = mem_->pimController(ch).bytesMoved();
    double imbalanceSum = 0.0;
    unsigned windows = 0;
    while (!xfer->done) {
        const Tick limit = eq_.now() + window;
        runUntil([&] { return xfer->done; }, limit);
        // Checked unconditionally: a quiet window must not skip the
        // drained-queue exit or a stalled transfer spins forever.
        const bool drained = eq_.pending() == 0 && !xfer->done;
        if (eq_.now() > xfer->startPs) {
            std::uint64_t total = 0, peak = 0;
            for (unsigned ch = 0; ch < mem_->pimChannels(); ++ch) {
                const std::uint64_t cur =
                    mem_->pimController(ch).bytesMoved();
                const std::uint64_t delta = cur - prev[ch];
                prev[ch] = cur;
                total += delta;
                peak = std::max(peak, delta);
            }
            // Ignore windows with negligible traffic (ramp-up/drain).
            if (total >= 64 * mem_->pimChannels()) {
                imbalanceSum += static_cast<double>(peak) /
                                (static_cast<double>(total) /
                                 mem_->pimChannels());
                ++windows;
            }
        }
        if (drained)
            break;
    }
    if (!xfer->done) {
        // The event queue drained with the transfer incomplete: some
        // component dropped a completion. Name what is still owed and
        // report a structured stall instead of dying on a bare assert.
        std::ostringstream os;
        os << "transfer did not complete: event queue drained at "
           << eq_.now() << "ps (pending=" << eq_.pending() << "); "
           << dce_->outstandingSummary();
        for (unsigned ch = 0; ch < mem_->dramChannels(); ++ch) {
            if (mem_->dramController(ch).pending() > 0) {
                os << "; dram.ch" << ch << " pending="
                   << mem_->dramController(ch).pending();
            }
        }
        for (unsigned ch = 0; ch < mem_->pimChannels(); ++ch) {
            if (mem_->pimController(ch).pending() > 0) {
                os << "; pim.ch" << ch << " pending="
                   << mem_->pimController(ch).pending();
            }
        }
        if (!xfer->context.empty())
            os << "; " << xfer->context;
        xfer->endPs = eq_.now();
        xfer->status = resilience::Status::failure(
            resilience::ErrorCode::TransferStalled, os.str());
    }
    TransferStats stats = finishStats(*xfer, before, dramB, pimB);
    stats.status = xfer->status;
    if (windows > 0)
        stats.pimWindowImbalance = imbalanceSum / windows;
    return stats;
}

TransferStats
System::runMemcpy(std::uint64_t totalBytes, unsigned threads)
{
    PIMMMU_ASSERT(totalBytes % 64 == 0, "memcpy size must be 64B-aligned");
    const Addr src = allocDram(totalBytes);
    const Addr dst = allocDram(totalBytes);

    // Functional copy. With detection enabled the payload crosses the
    // modeled link word-by-word (ECC + end-to-end CRC, same machinery
    // as the scatter path) with a bounded functional retry; without a
    // manager the legacy guard-free copy runs byte-identically.
    resilience::Status copyStatus;
    resilience::Manager *mgr = resilience_.get();
    if (mgr && mgr->policy().detectionEnabled()) {
        const resilience::Policy &pol = mgr->policy();
        const unsigned attempts = pol.retry ? pol.maxRetries + 1 : 1;
        bool delivered = false;
        for (unsigned attempt = 0; attempt < attempts && !delivered;
             ++attempt) {
            resilience::XferGuard guard = mgr->makeGuard();
            device::guardedCopy(mem_->store(), src, dst, totalBytes,
                                guard);
            mgr->absorbGuard(guard);
            delivered = guard.dataOk();
            if (!delivered && attempt + 1 < attempts) {
                if (guard.uncorrectedWords > 0)
                    mgr->noteEccRetry();
                else
                    mgr->noteCrcRetry();
            }
        }
        if (!delivered) {
            mgr->noteTransferFailed();
            copyStatus = resilience::Status::failure(
                resilience::ErrorCode::DataCorrupt,
                "memcpy payload corrupt after the retry budget");
        }
    } else {
        std::vector<std::uint8_t> buf(64);
        for (std::uint64_t off = 0; off < totalBytes; off += 64) {
            mem_->store().read(src + off, buf.data(), 64);
            mem_->store().write(dst + off, buf.data(), 64);
        }
    }

    const EnergySnapshot before = snapshot();
    std::vector<std::uint64_t> dramB, pimB;
    for (unsigned ch = 0; ch < mem_->dramChannels(); ++ch)
        dramB.push_back(mem_->dramController(ch).bytesMoved());
    for (unsigned ch = 0; ch < mem_->pimChannels(); ++ch)
        pimB.push_back(mem_->pimController(ch).bytesMoved());

    auto xfer = std::make_shared<AsyncTransfer>();
    xfer->startPs = eq_.now();
    xfer->bytes = totalBytes;

    if (plane_ == Plane::FastForward) {
        // The functional copy above (guarded or plain) is the whole
        // operation in fast-forward; skip the DCE/copy-thread timing
        // plane entirely.
        ++ffStats().counter("memcpys");
        ffStats().counter("bytes") += totalBytes;
        xfer->done = true;
        xfer->endPs = eq_.now();
        TransferStats stats = finishStats(*xfer, before, dramB, pimB);
        stats.status = copyStatus;
        return stats;
    }

    if (config_.useDce()) {
        // Offload to the DCE as fine-grained chunks.
        const unsigned chunks = 64;
        const std::uint64_t lines = totalBytes / 64;
        const std::uint64_t perChunk =
            std::max<std::uint64_t>(1, lines / chunks);
        core::DceTransfer transfer;
        transfer.dir = core::XferDirection::DramToDram;
        std::uint64_t line = 0;
        while (line < lines) {
            const std::uint64_t n =
                std::min(perChunk, lines - line);
            core::BankStream stream;
            stream.hostBase[0] = src + line * 64;
            stream.wireBase = dst + line * 64;
            stream.totalLines = n;
            transfer.streams.push_back(stream);
            line += n;
        }
        eq_.scheduleAfter(
            config_.dce.mmioDoorbellPs,
            [this, transfer = std::move(transfer), xfer]() mutable {
                dce_->enqueue(std::move(transfer), [this, xfer] {
                    xfer->done = true;
                    xfer->endPs = eq_.now();
                });
            });
    } else {
        // Software multithreaded memcpy (AVX-512 streaming copy).
        const std::uint64_t lines = totalBytes / 64;
        const std::uint64_t perThread =
            std::max<std::uint64_t>(1, lines / threads);
        std::vector<std::shared_ptr<cpu::SoftThread>> workers;
        std::uint64_t line = 0;
        while (line < lines) {
            const std::uint64_t n = std::min(perThread, lines - line);
            cpu::CopyWork work;
            work.kind = cpu::CopyWork::Kind::DramToDram;
            work.src = src + line * 64;
            work.dst = dst + line * 64;
            work.lines = n;
            workers.push_back(std::make_shared<cpu::CopyThread>(work));
            line += n;
        }
        cpu_->runJob(std::move(workers), [this, xfer] {
            xfer->done = true;
            xfer->endPs = eq_.now();
        });
    }

    runUntil([&] { return xfer->done; });
    if (!xfer->done) {
        // The event queue drained mid-copy: report a structured stall
        // instead of dying on a bare assert.
        std::ostringstream os;
        os << "memcpy did not complete: event queue drained at "
           << eq_.now() << "ps; " << dce_->outstandingSummary();
        xfer->endPs = eq_.now();
        xfer->status = resilience::Status::failure(
            resilience::ErrorCode::TransferStalled, os.str());
    }
    TransferStats stats = finishStats(*xfer, before, dramB, pimB);
    stats.status = !copyStatus.ok() ? copyStatus : xfer->status;
    return stats;
}

ScrubReport
System::runScrub()
{
    ScrubReport report;
    resilience::Manager *mgr = resilience_.get();
    if (mgr == nullptr || !mgr->policy().repairEnabled)
        return report;
    const std::vector<unsigned> banks = mgr->banksNeedingProbe();
    if (banks.empty())
        return report;
    if (scrubScratch_ == kAddrInvalid)
        scrubScratch_ = allocDram(8 * 64);
    if (!scrubStats_) {
        scrubStats_ = std::make_unique<stats::Group>("scrub");
        telemetry::StatsRegistry::global().add(*scrubStats_);
    }

    const device::PimGeometry &geom = config_.pimGeom;
    const std::uint64_t probeBytes = 64;
    // Probe the MRAM tail so in-flight application heaps stay intact.
    const Addr probeOffset = geom.mramBytesPerDpu() - probeBytes;
    const Addr pimBase = mem_->systemMap().pimBase();
    const std::uint64_t wordStart = probeOffset / device::kWordBytes;

    for (const unsigned bank : banks) {
        // Deterministic per-bank probe pattern.
        std::uint8_t pattern[64];
        for (unsigned i = 0; i < sizeof(pattern); ++i)
            pattern[i] = static_cast<std::uint8_t>(bank * 31 + i);

        device::BankGrouping grouping;
        grouping.banks.emplace_back();
        device::BankGrouping::Bank &b = grouping.banks.back();
        b.bankIdx = bank;
        std::vector<unsigned> ids(geom.chipsPerRank);
        for (unsigned c = 0; c < geom.chipsPerRank; ++c) {
            b.dpuId[c] = geom.dpuId(bank, c);
            b.hostBase[c] = scrubScratch_ + Addr{c} * probeBytes;
            ids[c] = b.dpuId[c];
            mem_->store().write(b.hostBase[c], pattern,
                                sizeof(pattern));
        }

        // The probe always runs fully guarded: re-admission evidence
        // is exactly "the link delivered CRC-clean data".
        resilience::XferGuard guard = mgr->makeGuard();
        guard.eccEnabled = true;
        guard.crcEnabled = true;
        device::functionalTransfer(mem_->store(), *pim_, true, grouping,
                                   probeBytes, probeOffset, &guard);

        // Timing plane: the probe's line traffic goes through the real
        // memory controllers, so a background scrubber steals DRAM and
        // PIM service cycles from foreground traffic instead of being
        // free. One 64 B read per chip from the scratch buffer, one
        // 64 B write per chip onto the bank's wire lines.
        const Tick probeStart = eq_.now();
        const Addr wireBase = pimBase + geom.bankRegionOffset(bank) +
                              wordStart * device::kBlockBytes;
        auto left = std::make_shared<unsigned>(2 * geom.chipsPerRank);
        auto tryIssue = std::make_shared<
            std::function<void(const dram::MemRequest &)>>();
        *tryIssue = [this, tryIssue](const dram::MemRequest &req) {
            // Full controller queue: back off one controller clock.
            if (!mem_->enqueue(req))
                eq_.scheduleAfter(kPsPerNs, [tryIssue, req] {
                    (*tryIssue)(req);
                });
        };
        for (unsigned c = 0; c < geom.chipsPerRank; ++c) {
            dram::MemRequest rd;
            rd.paddr = mem_->toPhysical(b.hostBase[c]);
            rd.write = false;
            rd.onComplete = [left](const dram::MemRequest &) {
                --*left;
            };
            (*tryIssue)(rd);
            dram::MemRequest wr;
            wr.paddr = wireBase + Addr{c} * probeBytes;
            wr.write = true;
            wr.onComplete = [left](const dram::MemRequest &) {
                --*left;
            };
            (*tryIssue)(wr);
        }
        runUntil([&] { return *left == 0; });
        scrubStats_->counter("bandwidth_stolen") +=
            2 * geom.chipsPerRank * probeBytes;
        scrubStats_->counter("probe_service_ps") +=
            eq_.now() - probeStart;

        // A probe can find the domain still dying under it.
        const bool rekilled = mgr->probeKillSites(ids, eq_.now());
        mgr->absorbGuard(guard);
        const bool clean = guard.dataOk() && !rekilled;
        mgr->noteProbeResult(bank, clean, eq_.now());
        ++report.probed;
        if (!clean)
            ++report.failed;
        else if (mgr->bankState(bank) ==
                 resilience::BankState::Healthy)
            ++report.readmitted;
    }
    return report;
}

void
System::addComputeContenders(unsigned count)
{
    for (unsigned i = 0; i < count; ++i)
        cpu_->addThread(std::make_shared<cpu::ComputeContender>());
}

void
System::addMemoryContenders(unsigned count, cpu::MemIntensity intensity,
                            std::uint64_t footprintBytes)
{
    for (unsigned i = 0; i < count; ++i) {
        const Addr base = allocDram(footprintBytes, 4096);
        cpu_->addThread(std::make_shared<cpu::MemoryContender>(
            intensity, base, footprintBytes, 0x5eed + contenderSeed_++));
    }
}

} // namespace sim
} // namespace pimmmu

/**
 * @file
 * A bare request-stream driver: issues a list of line addresses to the
 * memory system with bounded outstanding requests and runs the event
 * loop to completion. Used to measure raw subsystem bandwidth under a
 * given mapping function (paper Fig. 8) without any CPU-model effects.
 */

#ifndef PIMMMU_SIM_STREAM_DRIVER_HH
#define PIMMMU_SIM_STREAM_DRIVER_HH

#include <vector>

#include "common/event_queue.hh"
#include "dram/memory_system.hh"

namespace pimmmu {
namespace sim {

/** Result of one driven stream. */
struct StreamResult
{
    Tick durationPs = 0;
    std::uint64_t bytes = 0;

    double gbps() const { return gbPerSec(bytes, durationPs); }
};

/**
 * Issues addresses in order, keeping up to @p maxOutstanding requests
 * in flight (a deep hardware-prefetch-style stream).
 */
class StreamDriver
{
  public:
    StreamDriver(EventQueue &eq, dram::MemorySystem &mem,
                 unsigned maxOutstanding = 64);

    /**
     * Drive all of @p addrs as reads or writes; runs the event queue
     * until every request completes.
     */
    StreamResult run(const std::vector<Addr> &addrs, bool write);

  private:
    void pump();

    EventQueue &eq_;
    dram::MemorySystem &mem_;
    unsigned maxOutstanding_;

    const std::vector<Addr> *addrs_ = nullptr;
    bool write_ = false;
    std::size_t nextIdx_ = 0;
    std::size_t completed_ = 0;
    unsigned outstanding_ = 0;
};

} // namespace sim
} // namespace pimmmu

#endif // PIMMMU_SIM_STREAM_DRIVER_HH

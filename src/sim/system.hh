/**
 * @file
 * The full simulated system (paper Table I): host CPU + LLC + memory
 * controllers + DRAM and PIM subsystems + (optionally) the PIM-MMU.
 *
 * A System is built at one of the paper's design points:
 *   Base      - software transfers, homogeneous locality-centric map
 *   BaseD     - DCE as a vanilla DMA (no PIM-MS), locality map
 *   BaseDH    - DCE + HetMap, still no PIM-MS
 *   BaseDHP   - full PIM-MMU (DCE + HetMap + PIM-MS)
 * which is exactly the additive ablation of paper Fig. 15.
 */

#ifndef PIMMMU_SIM_SYSTEM_HH
#define PIMMMU_SIM_SYSTEM_HH

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "cache/cache.hh"
#include "common/event_queue.hh"
#include "core/dce.hh"
#include "core/pim_mmu_runtime.hh"
#include "cpu/contender.hh"
#include "cpu/cpu.hh"
#include "dram/memory_system.hh"
#include "pim/pim_device.hh"
#include "resilience/manager.hh"
#include "sim/energy.hh"
#include "upmem/dpu_runtime.hh"

namespace pimmmu {
namespace sim {

/** The additive design points of the Fig. 15 ablation. */
enum class DesignPoint
{
    Base,
    BaseD,
    BaseDH,
    BaseDHP
};

const char *designPointName(DesignPoint dp);

/**
 * Simulation plane selector. Timing is the full model: functional
 * semantics apply eagerly and the timing plane (CPU copy threads or
 * doorbell -> DCE -> interrupt) rides the event queue. FastForward
 * executes transfers and memcpys through the functional plane only —
 * golden data model, resilience guards, bit-exact payloads, identical
 * functional counters — completing synchronously without advancing
 * simulated time. Kernel launches are functional in both planes (their
 * execution time is an analytic model, not events), so fast-forward
 * leaves them untouched. A run may switch planes at any quiesced point
 * (no transfer in flight); each switch records a PlaneCheckpoint so
 * warm-up-then-measure runs are auditable and replayable.
 */
enum class Plane
{
    Timing,
    FastForward
};

const char *planeName(Plane plane);

/** Deterministic record of one setPlane() transition. */
struct PlaneCheckpoint
{
    Tick atPs = 0;    //!< simulated time of the switch
    Plane from = Plane::Timing;
    Plane to = Plane::Timing;
    std::uint64_t ffTransfers = 0; //!< ff.transfers at the switch
    std::uint64_t ffBytes = 0;     //!< ff.bytes at the switch
    std::uint64_t ffMemcpys = 0;   //!< ff.memcpys at the switch
    /** Full functional-image digest (DRAM store + DPU MRAM). */
    std::uint64_t memoryFnv = 0;
};

/** Everything needed to build a System. */
struct SystemConfig
{
    cpu::CpuConfig cpu;
    cache::CacheConfig llc;
    bool useLlc = true;

    mapping::DramGeometry dramGeom;
    device::PimGeometry pimGeom;
    dram::SpeedGrade dramSpeed = dram::SpeedGrade::DDR4_2400;
    dram::SpeedGrade pimSpeed = dram::SpeedGrade::DDR4_2400;
    dram::ControllerConfig mc;
    core::DceConfig dce;

    DesignPoint design = DesignPoint::BaseDHP;
    PowerModel power;

    /**
     * Fault-tolerance policy for the transfer path. Fully off by
     * default; the resilience manager (and its stats group) is only
     * instantiated when something is enabled, so default systems are
     * bit-identical to pre-resilience builds.
     */
    resilience::Policy resilience;

    /**
     * Scatter host buffers across physical 2 MiB frames (default: the
     * OS-allocated reality). Disable to model pinned, physically
     * contiguous hugepage buffers (controlled microbenchmarks).
     */
    bool scatterHostFrames = true;

    /**
     * Virtual-memory layer configuration (DCE-side TLB geometry and
     * walk timing). The MMU itself is instantiated lazily on first
     * use, so systems that never map a tenant stay bit-identical to
     * physical-only builds.
     */
    mmu::MmuConfig mmu;

    bool hetMap() const { return design >= DesignPoint::BaseDH; }
    bool useDce() const { return design != DesignPoint::Base; }
    bool usePimMs() const { return design == DesignPoint::BaseDHP; }

    /** Paper Table I configuration at the given design point. */
    static SystemConfig paperTable1(
        DesignPoint design = DesignPoint::BaseDHP);
};

/** Timing/energy outcome of one measured operation. */
struct TransferStats
{
    Tick startPs = 0;
    Tick endPs = 0;
    std::uint64_t bytes = 0;
    EnergyReport energy;
    double avgActiveCores = 0.0;
    std::vector<double> dramChannelGbps;
    std::vector<double> pimChannelGbps;

    /**
     * Mean over 100 us windows of (busiest PIM channel's bytes /
     * average per-channel bytes): 1.0 = perfectly balanced, numChannels
     * = all traffic on one channel. Captures the instantaneous channel
     * congestion of paper Figs. 6/12 that whole-run averages hide.
     */
    double pimWindowImbalance = 1.0;

    /** Final status: Ok, or why the operation failed/stalled. */
    resilience::Status status;

    bool ok() const { return status.ok(); }
    Tick durationPs() const { return endPs - startPs; }
    double seconds() const
    {
        return static_cast<double>(durationPs()) / 1e12;
    }
    double gbps() const { return gbPerSec(bytes, durationPs()); }
    double gbPerJoule() const { return energy.gbPerJoule(bytes); }
};

/** Outcome of one scrub pass over the out-of-service banks. */
struct ScrubReport
{
    unsigned probed = 0;     //!< banks probed this pass
    unsigned readmitted = 0; //!< banks that rejoined service
    unsigned failed = 0;     //!< probes that found fresh corruption

    bool idle() const { return probed == 0; }
};

/** Handle to a transfer running concurrently with other activity. */
struct AsyncTransfer
{
    bool done = false;
    Tick startPs = 0;
    Tick endPs = 0;
    std::uint64_t bytes = 0;
    /** Final status reported by the transfer path. */
    resilience::Status status;
    /** Submission context ("tenant N va 0x...") folded into stall
     *  diagnostics; empty for physically addressed transfers. */
    std::string context;
};

/** The simulated machine. */
class System
{
  public:
    explicit System(const SystemConfig &config);
    ~System();

    System(const System &) = delete;
    System &operator=(const System &) = delete;

    const SystemConfig &config() const { return config_; }
    EventQueue &eq() { return eq_; }
    dram::MemorySystem &mem() { return *mem_; }
    device::PimDevice &pim() { return *pim_; }
    cpu::Cpu &cpu() { return *cpu_; }
    cache::Cache *llc() { return llc_.get(); }
    core::Dce &dce() { return *dce_; }
    core::PimMmuRuntime &pimMmu() { return *pimMmuRuntime_; }
    upmem::UpmemRuntime &upmem() { return *upmemRuntime_; }
    const mapping::SystemMap &map() const { return *map_; }

    /** Null unless the config enables a resilience feature. */
    resilience::Manager *resilienceManager()
    {
        return resilience_.get();
    }

    /** Bump-allocate host memory in the DRAM physical region. */
    Addr allocDram(std::uint64_t bytes, std::uint64_t align = 64);

    // ------------------------------------------------------------------
    // Simulation plane (fast-forward warm-up; see Plane).
    // ------------------------------------------------------------------

    /**
     * Switch the execution plane. Call only at quiesced points (no
     * transfer in flight). Each actual transition records a
     * PlaneCheckpoint — including a deterministic digest of the full
     * functional memory image — and is counted in the lazily created
     * "ff" stats group (default Timing-only systems stay bit-identical
     * to pre-plane builds).
     */
    void setPlane(Plane plane);
    Plane plane() const { return plane_; }

    /** Transitions recorded by setPlane, in order. */
    const std::vector<PlaneCheckpoint> &planeCheckpoints() const
    {
        return planeCheckpoints_;
    }

    /**
     * Deterministic FNV-1a digest of the functional memory image: the
     * DRAM backing store (all non-zero pages, ascending) plus every
     * DPU's touched MRAM. Two runs that moved the same bytes hash
     * equal regardless of which plane moved them.
     */
    std::uint64_t memoryFingerprint() const;

    /**
     * Checkpoint the System's own bookkeeping (allocator cursor, scrub
     * scratch, contender seed, plane + recorded switches, lazy "ff" /
     * "scrub" stats groups). Subsystem state is checkpointed by the
     * subsystems themselves — see checkpoint::save(), which walks the
     * whole machine one CRC-guarded section at a time.
     */
    void saveOwnState(serialize::ByteSink &out) const;

    /**
     * Inverse of saveOwnState. Re-propagates the restored plane to the
     * runtimes without recording a PlaneCheckpoint (the restored
     * checkpoint list already holds the original transitions).
     * @return false on a malformed payload.
     */
    bool restoreOwnState(serialize::ByteSource &in);

    /**
     * Run the event loop until @p pred returns true (or the queue
     * drains / @p limitPs passes). @return whether pred was satisfied.
     */
    bool runUntil(const std::function<bool()> &pred,
                  Tick limitPs = kTickMax);

    EnergySnapshot snapshot() const;

    /** Total channels (DRAM + PIM) for the background-power term. */
    unsigned totalChannels() const;

    // ------------------------------------------------------------------
    // High-level measured operations used by the benches and examples.
    // ------------------------------------------------------------------

    /**
     * Launch a DRAM<->PIM transfer of @p bytesPerDpu bytes to each of
     * the first @p numDpus DPUs. Host arrays are carved out of one
     * contiguous allocation, exactly like the paper's Fig. 10 example.
     * Routed through the software path (Base) or the PIM-MMU path
     * (BaseD and above) according to the design point.
     */
    std::shared_ptr<AsyncTransfer>
    startTransfer(core::XferDirection dir, unsigned numDpus,
                  std::uint64_t bytesPerDpu, Addr heapOffset = 0);

    /** Blocking variant of startTransfer with full stats. */
    TransferStats runTransfer(core::XferDirection dir, unsigned numDpus,
                              std::uint64_t bytesPerDpu,
                              Addr heapOffset = 0);

    /**
     * Launch an explicit descriptor (physical or, with op.tenant set,
     * virtually addressed through the MMU). DCE design points only.
     */
    std::shared_ptr<AsyncTransfer> startTransfer(core::PimMmuOp op);

    /** Blocking variant of the descriptor overload with full stats. */
    TransferStats runTransfer(core::PimMmuOp op);

    /** The translation layer (lazily instantiated; see SystemConfig). */
    mmu::Mmu &mmu() { return pimMmuRuntime_->mmu(); }

    /**
     * DRAM->DRAM memcpy of @p totalBytes. Software path uses
     * @p threads copy threads; at DCE design points the copy is
     * offloaded to the engine in fine-grained chunks.
     */
    TransferStats runMemcpy(std::uint64_t totalBytes,
                            unsigned threads = 8);

    /**
     * One scrub pass: probe every out-of-service bank with a small
     * CRC-guarded transfer and feed the evidence into the health state
     * machine (see resilience::Manager::noteProbeResult). Re-admission
     * takes `Policy::probesToReadmit` consecutive clean probes, so
     * callers typically run passes until the report is idle. No-op
     * unless the policy enables repair.
     */
    ScrubReport runScrub();

    /** Add co-located contender threads (Fig. 13). */
    void addComputeContenders(unsigned count);
    void addMemoryContenders(unsigned count, cpu::MemIntensity intensity,
                             std::uint64_t footprintBytes = 512 * kMiB);

  private:
    std::shared_ptr<AsyncTransfer>
    startSoftwareTransfer(core::XferDirection dir,
                          const std::vector<unsigned> &dpuIds,
                          const std::vector<Addr> &hostAddrs,
                          std::uint64_t bytesPerDpu, Addr heapOffset);

    std::shared_ptr<AsyncTransfer> startDceTransfer(core::PimMmuOp op);

    TransferStats finishStats(const AsyncTransfer &xfer,
                              const EnergySnapshot &before,
                              const std::vector<std::uint64_t> &dramB,
                              const std::vector<std::uint64_t> &pimB);

    /** Windowed completion loop + stall diagnostics + finishStats,
     *  shared by both runTransfer overloads. */
    TransferStats
    measureTransfer(const std::shared_ptr<AsyncTransfer> &xfer,
                    const EnergySnapshot &before,
                    const std::vector<std::uint64_t> &dramB,
                    const std::vector<std::uint64_t> &pimB);

    SystemConfig config_;
    EventQueue eq_;
    mapping::SystemMapPtr map_;
    std::unique_ptr<dram::MemorySystem> mem_;
    std::unique_ptr<device::PimDevice> pim_;
    std::unique_ptr<cache::Cache> llc_;
    std::unique_ptr<cpu::Cpu> cpu_;
    std::unique_ptr<resilience::Manager> resilience_;
    std::unique_ptr<core::Dce> dce_;
    std::unique_ptr<core::PimMmuRuntime> pimMmuRuntime_;
    std::unique_ptr<upmem::UpmemRuntime> upmemRuntime_;

    Addr dramAllocTop_ = 0;
    Addr scrubScratch_ = kAddrInvalid;
    /** Lazily created on the first scrub pass so systems that never
     *  scrub keep their stats output (and registration order)
     *  unchanged. */
    std::unique_ptr<stats::Group> scrubStats_;
    unsigned contenderSeed_ = 1;

    Plane plane_ = Plane::Timing;
    std::vector<PlaneCheckpoint> planeCheckpoints_;
    /** Lazily created on the first switch to FastForward (same
     *  registration-order reasoning as scrubStats_). */
    std::unique_ptr<stats::Group> ffStats_;
    stats::Group &ffStats();
};

} // namespace sim
} // namespace pimmmu

#endif // PIMMMU_SIM_SYSTEM_HH

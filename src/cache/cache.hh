/**
 * @file
 * A set-associative last-level cache with LRU replacement, write-back /
 * write-allocate policy, and MSHR-based miss handling (paper Table I:
 * 8 MB, 16-way, 64 B lines).
 *
 * PIM-space accesses are non-cacheable in the modeled system and never
 * reach this cache; it serves the CPU's cacheable DRAM-space demand
 * traffic (e.g. the memory-intensive contender workloads of Fig. 13).
 */

#ifndef PIMMMU_CACHE_CACHE_HH
#define PIMMMU_CACHE_CACHE_HH

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <vector>

#include "common/event_queue.hh"
#include "common/serialize.hh"
#include "common/stats.hh"
#include "dram/memory_system.hh"

namespace pimmmu {
namespace cache {

/** LLC tunables. */
struct CacheConfig
{
    std::uint64_t sizeBytes = 8 * kMiB;
    unsigned ways = 16;
    unsigned lineBytes = 64;
    unsigned hitLatencyCycles = 30;
    unsigned mshrs = 64;
    Tick cpuPeriodPs = 313; //!< 3.2 GHz
};

/**
 * Timing-only LLC (data contents live in the backing store; the cache
 * tracks tags, dirtiness and latency).
 */
class Cache
{
  public:
    using Callback = std::function<void()>;

    Cache(EventQueue &eq, const CacheConfig &config,
          dram::MemorySystem &downstream);

    /**
     * Issue a cacheable access.
     *  - hit: @p onDone fires after the hit latency.
     *  - miss: an MSHR is allocated (or the access merges into an
     *    existing one) and @p onDone fires when the fill returns.
     * @return false if the access cannot be accepted right now (MSHRs
     *         exhausted or the memory controller queue is full).
     */
    bool access(Addr addr, bool write, Callback onDone);

    stats::Group &stats() { return stats_; }

    std::uint64_t hits() const { return hits_; }
    std::uint64_t misses() const { return misses_; }

    double
    hitRate() const
    {
        const auto total = hits_ + misses_;
        return total ? static_cast<double>(hits_) / total : 0.0;
    }

    std::size_t outstandingMisses() const { return mshrs_.size(); }

    /**
     * Checkpoint tags/dirty bits/LRU stamps and hit counters. Only
     * valid when no miss is outstanding (MSHR waiters are closures
     * and cannot be serialized); a restored cache replays the exact
     * hit/miss/eviction sequence of the original.
     */
    void saveState(serialize::ByteSink &out) const;

    /** Inverse of saveState. @return false on a malformed payload. */
    bool restoreState(serialize::ByteSource &in);

  private:
    struct Line
    {
        bool valid = false;
        bool dirty = false;
        std::uint64_t tag = 0;
        std::uint64_t lruStamp = 0;
    };

    struct Mshr
    {
        std::vector<Callback> waiters;
        bool anyWrite = false;
    };

    Addr lineAlign(Addr addr) const { return addr & ~Addr{lineMask_}; }
    std::size_t setIndex(Addr addr) const;
    std::uint64_t tagOf(Addr addr) const;
    Line *findLine(Addr addr);
    void installLine(Addr addr, bool dirty);
    void handleFill(Addr lineAddr);

    EventQueue &eq_;
    CacheConfig config_;
    dram::MemorySystem &mem_;

    std::uint64_t lineMask_;
    std::size_t numSets_;
    std::vector<Line> lines_; //!< numSets * ways
    std::uint64_t lruCounter_ = 0;

    std::unordered_map<Addr, Mshr> mshrs_;

    std::uint64_t hits_ = 0;
    std::uint64_t misses_ = 0;
    stats::Group stats_;
};

} // namespace cache
} // namespace pimmmu

#endif // PIMMMU_CACHE_CACHE_HH

#include "cache/cache.hh"

#include "common/bitutils.hh"
#include "common/stats_serialize.hh"

namespace pimmmu {
namespace cache {

Cache::Cache(EventQueue &eq, const CacheConfig &config,
             dram::MemorySystem &downstream)
    : eq_(eq), config_(config), mem_(downstream),
      lineMask_(config.lineBytes - 1),
      numSets_(config.sizeBytes / (config.lineBytes * config.ways)),
      lines_(numSets_ * config.ways), stats_("llc")
{
    if (!isPowerOfTwo(config.lineBytes) || !isPowerOfTwo(numSets_))
        fatal("cache line count and line size must be powers of two");
}

std::size_t
Cache::setIndex(Addr addr) const
{
    return (addr / config_.lineBytes) % numSets_;
}

std::uint64_t
Cache::tagOf(Addr addr) const
{
    return (addr / config_.lineBytes) / numSets_;
}

Cache::Line *
Cache::findLine(Addr addr)
{
    const std::size_t base = setIndex(addr) * config_.ways;
    const std::uint64_t tag = tagOf(addr);
    for (unsigned w = 0; w < config_.ways; ++w) {
        Line &line = lines_[base + w];
        if (line.valid && line.tag == tag)
            return &line;
    }
    return nullptr;
}

void
Cache::installLine(Addr addr, bool dirty)
{
    const std::size_t base = setIndex(addr) * config_.ways;
    Line *victim = &lines_[base];
    for (unsigned w = 0; w < config_.ways; ++w) {
        Line &line = lines_[base + w];
        if (!line.valid) {
            victim = &line;
            break;
        }
        if (line.lruStamp < victim->lruStamp)
            victim = &line;
    }

    if (victim->valid && victim->dirty) {
        // Write back the victim. Fire-and-forget: the writeback does
        // not block the fill. If the controller queue is full the
        // writeback is dropped from the timing plane (the functional
        // plane is unaffected); count it so tests can watch for abuse.
        const Addr victimAddr =
            (victim->tag * numSets_ + setIndex(addr)) *
            config_.lineBytes;
        dram::MemRequest wb;
        wb.paddr = victimAddr;
        wb.write = true;
        if (mem_.enqueue(std::move(wb)))
            ++stats_.counter("writebacks");
        else
            ++stats_.counter("writebacks_dropped");
    }

    victim->valid = true;
    victim->dirty = dirty;
    victim->tag = tagOf(addr);
    victim->lruStamp = ++lruCounter_;
}

void
Cache::handleFill(Addr lineAddr)
{
    auto it = mshrs_.find(lineAddr);
    PIMMMU_ASSERT(it != mshrs_.end(), "fill with no MSHR");
    installLine(lineAddr, it->second.anyWrite);
    auto waiters = std::move(it->second.waiters);
    mshrs_.erase(it);
    for (auto &cb : waiters)
        cb();
}

bool
Cache::access(Addr addr, bool write, Callback onDone)
{
    const Addr lineAddr = lineAlign(addr);
    const Tick hitLatency =
        Tick{config_.hitLatencyCycles} * config_.cpuPeriodPs;

    if (Line *line = findLine(lineAddr)) {
        line->lruStamp = ++lruCounter_;
        line->dirty = line->dirty || write;
        ++hits_;
        ++stats_.counter(write ? "write_hits" : "read_hits");
        eq_.scheduleAfter(hitLatency, std::move(onDone));
        return true;
    }

    // Miss: merge into an existing MSHR when possible.
    if (auto it = mshrs_.find(lineAddr); it != mshrs_.end()) {
        it->second.waiters.push_back(std::move(onDone));
        it->second.anyWrite = it->second.anyWrite || write;
        ++stats_.counter("mshr_merges");
        return true;
    }

    if (mshrs_.size() >= config_.mshrs) {
        ++stats_.counter("mshr_full_rejects");
        return false;
    }
    if (!mem_.canAccept(lineAddr, false)) {
        ++stats_.counter("queue_full_rejects");
        return false;
    }

    ++misses_;
    ++stats_.counter(write ? "write_misses" : "read_misses");
    auto &mshr = mshrs_[lineAddr];
    mshr.waiters.push_back(std::move(onDone));
    mshr.anyWrite = write;

    dram::MemRequest fill;
    fill.paddr = lineAddr;
    fill.write = false;
    fill.onComplete = [this, lineAddr](const dram::MemRequest &) {
        handleFill(lineAddr);
    };
    const bool accepted = mem_.enqueue(std::move(fill));
    PIMMMU_ASSERT(accepted, "canAccept/enqueue mismatch");
    return true;
}

void
Cache::saveState(serialize::ByteSink &out) const
{
    PIMMMU_ASSERT(mshrs_.empty(),
                  "cache checkpoint requires no outstanding misses");
    out.u64(lines_.size());
    for (const Line &l : lines_) {
        out.boolean(l.valid);
        out.boolean(l.dirty);
        out.u64(l.tag);
        out.u64(l.lruStamp);
    }
    out.u64(lruCounter_);
    out.u64(hits_);
    out.u64(misses_);
    stats::saveGroup(out, stats_);
}

bool
Cache::restoreState(serialize::ByteSource &in)
{
    if (in.u64() != lines_.size()) // geometry mismatch
        return false;
    for (Line &l : lines_) {
        l.valid = in.boolean();
        l.dirty = in.boolean();
        l.tag = in.u64();
        l.lruStamp = in.u64();
    }
    lruCounter_ = in.u64();
    hits_ = in.u64();
    misses_ = in.u64();
    return stats::restoreGroup(in, stats_);
}

} // namespace cache
} // namespace pimmmu

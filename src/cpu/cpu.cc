#include "cpu/cpu.hh"

#include <algorithm>

#include "cache/cache.hh"
#include "common/stats_serialize.hh"
#include "common/trace.hh"
#include "telemetry/stats_registry.hh"
#include "telemetry/timeline.hh"

namespace pimmmu {
namespace cpu {

Core::Core(EventQueue &eq, Cpu &cpu, unsigned id, Tick periodPs)
    : eq_(eq), cpu_(cpu), id_(id), periodPs_(periodPs)
{
    timelineTrack_ = telemetry::Timeline::global().track(
        "cpu.core" + std::to_string(id));
}

void
Core::settleBlocked()
{
    if (blockedSince_ == kTickMax)
        return;
    const Tick delta = eq_.now() - blockedSince_;
    blockedSince_ = kTickMax;
    busyPs_ += delta;
    if (thread_ && thread_->usesAvx())
        avxBusyPs_ += delta;
}

void
Core::clearThread()
{
    settleBlocked();
    if (thread_ && runStart_ != kTickMax) {
        auto &tl = telemetry::Timeline::global();
        if (tl.enabled() && eq_.now() > runStart_)
            tl.span(timelineTrack_, thread_->label(), runStart_,
                    eq_.now());
    }
    thread_ = nullptr;
    runStart_ = kTickMax;
}

void
Core::assign(SoftThread *thread, bool chargeSwitch)
{
    if (thread == thread_)
        return;
    clearThread();
    thread_ = thread;
    if (!thread_)
        return;
    runStart_ = eq_.now();
    Tick delay = 0;
    if (chargeSwitch) {
        delay = cpu_.config().ctxSwitchPs;
        busyPs_ += delay;
        ++cpu_.stats().counter("context_switches");
    }
    arm(delay);
}

void
Core::arm(Tick delay)
{
    if (pendingStep_)
        return;
    pendingStep_ = true;
    eq_.scheduleAfter(delay, [this] { stepLoop(); });
}

void
Core::stepLoop()
{
    pendingStep_ = false;
    if (!thread_)
        return;
    settleBlocked();
    if (thread_->finished()) {
        cpu_.onThreadDone(*this);
        return;
    }
    const unsigned cycles = thread_->step(*this);
    if (cycles == 0) {
        // Blocked. Sleeping threads release the core; spinning threads
        // hold it (fully busy) until Cpu::wakeThread re-arms the loop.
        if (thread_->yieldsWhenBlocked())
            cpu_.onThreadYield(*this);
        else
            blockedSince_ = eq_.now();
        return;
    }
    const Tick duration = Tick{cycles} * periodPs_;
    busyPs_ += duration;
    if (thread_->usesAvx())
        avxBusyPs_ += duration;
    arm(duration);
}

Cpu::Cpu(EventQueue &eq, const CpuConfig &config, dram::MemorySystem &mem,
         cache::Cache *llc)
    : eq_(eq), config_(config), mem_(mem), llc_(llc), stats_("cpu")
{
    cores_.reserve(config_.cores);
    for (unsigned i = 0; i < config_.cores; ++i) {
        cores_.push_back(
            std::make_unique<Core>(eq, *this, i, config_.periodPs()));
    }
    // Retry threads that stalled on a full controller queue.
    mem_.onDrain([this] {
        for (auto &core : cores_) {
            SoftThread *t = core->current();
            if (t && !t->finished() && t->waitingOnQueue())
                core->arm();
        }
    });

    telemetry::StatsRegistry::global().add(stats_, [this] {
        stats_.gauge("busy_us_total") =
            static_cast<double>(totalBusyPs()) / 1e6;
        stats_.gauge("avx_busy_us_total") =
            static_cast<double>(totalAvxBusyPs()) / 1e6;
        const Tick now = eq_.now();
        if (now > 0) {
            stats_.gauge("core_util_pct") =
                100.0 * static_cast<double>(totalBusyPs()) /
                (static_cast<double>(now) * cores_.size());
        }
    });
}

Cpu::~Cpu()
{
    telemetry::StatsRegistry::global().remove(stats_);
}

SoftThread *
Cpu::popRunnable()
{
    while (!runQueue_.empty()) {
        SoftThread *t = runQueue_.front();
        runQueue_.pop_front();
        if (!t->finished())
            return t;
    }
    return nullptr;
}

void
Cpu::addThread(std::shared_ptr<SoftThread> thread)
{
    if (shutdown_)
        return;
    SoftThread *raw = thread.get();
    allThreads_.push_back(std::move(thread));
    dispatch(raw);
    scheduleRotation();
}

bool
Cpu::isQueued(const SoftThread *thread) const
{
    for (const SoftThread *t : runQueue_) {
        if (t == thread)
            return true;
    }
    return false;
}

void
Cpu::dispatch(SoftThread *thread)
{
    // Idle core first.
    for (auto &core : cores_) {
        if (!core->current()) {
            core->assign(thread, true);
            return;
        }
    }
    // Wakeup preemption: a freshly runnable thread displaces a running
    // one (round-robin victim) instead of waiting a whole quantum, as
    // a fair OS scheduler would arrange. The victim stays runnable.
    Core &victim = *cores_[victimCursor_];
    victimCursor_ = (victimCursor_ + 1) % cores_.size();
    SoftThread *old = victim.current();
    if (old && !old->finished())
        runQueue_.push_back(old);
    victim.clearThread();
    victim.assign(thread, true);
}

void
Cpu::runJob(std::vector<std::shared_ptr<SoftThread>> threads,
            std::function<void()> onDone)
{
    Job job;
    job.onDone = std::move(onDone);
    for (auto &t : threads)
        job.threads.push_back(t.get());
    jobs_.push_back(std::move(job));
    for (auto &t : threads)
        addThread(std::move(t));
}

void
Cpu::wakeThread(SoftThread &thread)
{
    if (shutdown_)
        return;
    for (auto &core : cores_) {
        if (core->current() == &thread) {
            // Also reached when the wake *is* the completion that
            // finished the thread: the step loop retires it.
            core->arm();
            return;
        }
    }
    if (thread.finished()) {
        checkJobs();
        return;
    }
    // Rotated-out threads keep their place in the run queue; sleeping
    // threads (not queued anywhere) are dispatched immediately.
    if (!isQueued(&thread))
        dispatch(&thread);
}

void
Cpu::onThreadDone(Core &core)
{
    checkJobs();
    core.clearThread();
    if (SoftThread *next = popRunnable())
        core.assign(next, true);
}

void
Cpu::onThreadYield(Core &core)
{
    core.clearThread();
    if (SoftThread *next = popRunnable())
        core.assign(next, true);
}

void
Cpu::rotate()
{
    rotationScheduled_ = false;
    if (shutdown_)
        return;

    // Retire finished threads that are still parked on a core.
    for (auto &core : cores_) {
        if (core->current() && core->current()->finished())
            onThreadDone(*core);
    }

    PIMMMU_TRACE_LOG(trace::Category::Sched, eq_.now(),
                     "quantum rotation, runnable=" << runQueue_.size());
    // Round-robin: running threads go to the back of the queue in core
    // order, then each core takes the head of the queue.
    if (!runQueue_.empty()) {
        for (auto &core : cores_) {
            SoftThread *t = core->current();
            if (t && !t->finished()) {
                runQueue_.push_back(t);
                core->clearThread();
            }
        }
        for (auto &core : cores_) {
            if (!core->current()) {
                if (SoftThread *next = popRunnable())
                    core->assign(next, true);
            }
        }
    }
    checkJobs();
    scheduleRotation();
}

void
Cpu::scheduleRotation()
{
    if (rotationScheduled_ || shutdown_)
        return;
    // Only needed while there is anything to schedule.
    bool anyWork = !runQueue_.empty();
    for (auto &core : cores_) {
        if (core->current())
            anyWork = true;
    }
    if (!anyWork)
        return;
    rotationScheduled_ = true;
    eq_.scheduleAfter(config_.quantumPs, [this] { rotate(); });
}

void
Cpu::checkJobs()
{
    for (auto &job : jobs_) {
        if (job.done)
            continue;
        const bool allDone = std::all_of(
            job.threads.begin(), job.threads.end(),
            [](const SoftThread *t) { return t->finished(); });
        if (allDone) {
            job.done = true;
            if (job.onDone)
                job.onDone();
        }
    }
}

void
Cpu::shutdown()
{
    shutdown_ = true;
    runQueue_.clear();
    for (auto &core : cores_)
        core->clearThread();
}

void
Cpu::saveState(serialize::ByteSink &out) const
{
    PIMMMU_ASSERT(runQueue_.empty(),
                  "CPU checkpoint requires an empty run queue");
    out.u64(cores_.size());
    for (const auto &core : cores_) {
        out.u64(core->busyPs());
        out.u64(core->avxBusyPs());
    }
    out.u64(victimCursor_);
    stats::saveGroup(out, stats_);
}

bool
Cpu::restoreState(serialize::ByteSource &in)
{
    if (in.u64() != cores_.size()) // geometry mismatch
        return false;
    for (auto &core : cores_) {
        const Tick busy = in.u64();
        const Tick avx = in.u64();
        core->restoreBusy(busy, avx);
    }
    victimCursor_ = static_cast<unsigned>(in.u64());
    return stats::restoreGroup(in, stats_);
}

} // namespace cpu
} // namespace pimmmu

/**
 * @file
 * The software data-transfer thread: models one thread of the UPMEM
 * runtime's multithreaded AVX-512 copy loop (paper sections II-C and
 * III-B), or one thread of a plain DRAM->DRAM memcpy.
 *
 * Pipeline per 64 B line: issue wide load -> (transpose) -> issue wide
 * non-temporal store, with bounded in-flight loads (MSHR share) and
 * stores (write-combining buffers). PIM-space accesses are
 * non-cacheable; the copy loop bypasses the LLC entirely.
 */

#ifndef PIMMMU_CPU_COPY_THREAD_HH
#define PIMMMU_CPU_COPY_THREAD_HH

#include <array>
#include <cstdint>

#include "cpu/cpu.hh"
#include "cpu/thread.hh"

namespace pimmmu {
namespace cpu {

/** What a copy thread moves. */
struct CopyWork
{
    enum class Kind
    {
        DramToPim, //!< gather 8 DPU streams, transpose, write wire lines
        PimToDram, //!< read wire lines, un-transpose, scatter to streams
        DramToDram //!< plain memcpy (no transpose)
    };

    Kind kind = Kind::DramToDram;

    /** Per-chip host arrays (source for D2P, destination for P2D). */
    std::array<Addr, 8> dpuHostBase{};

    /** PIM-region physical address of the bank's wire lines. */
    Addr wireBase = 0;

    /** Lines to move per DPU stream (D2P/P2D). */
    std::uint64_t linesPerDpu = 0;

    /** Plain memcpy parameters (DramToDram). */
    Addr src = 0;
    Addr dst = 0;
    std::uint64_t lines = 0;

    std::uint64_t
    totalLines() const
    {
        return kind == Kind::DramToDram ? lines : linesPerDpu * 8;
    }
};

/**
 * One copy thread. Thread-level parallelism across banks/chunks is
 * obtained by instantiating many of these, exactly as the UPMEM runtime
 * spawns one worker per transfer target.
 */
class CopyThread : public SoftThread
{
  public:
    explicit CopyThread(const CopyWork &work);

    bool
    finished() const override
    {
        return writesDone_ == work_.totalLines();
    }

    unsigned step(Core &core) override;
    bool usesAvx() const override { return true; }
    const char *label() const override { return "copy"; }

    std::uint64_t bytesMoved() const { return writesDone_ * 64; }

  private:
    Addr readAddr(std::uint64_t k) const;
    Addr writeAddr(std::uint64_t k) const;
    Addr chipStreamAddr(std::uint64_t k) const;

    CopyWork work_;
    /** Consecutive lines fetched per chip stream before switching. */
    std::uint64_t burst_ = 8;
    Tick startedAt_ = kTickMax;
    std::uint64_t readsIssued_ = 0;
    std::uint64_t writesIssued_ = 0;
    std::uint64_t writesDone_ = 0;
    unsigned readsInflight_ = 0;
    unsigned writesInflight_ = 0;
    std::uint64_t pendingTranspose_ = 0;
};

} // namespace cpu
} // namespace pimmmu

#endif // PIMMMU_CPU_COPY_THREAD_HH

#include "cpu/contender.hh"

#include "cache/cache.hh"
#include "common/logging.hh"

namespace pimmmu {
namespace cpu {

unsigned
gapCyclesFor(MemIntensity intensity)
{
    switch (intensity) {
      case MemIntensity::Low:
        return 256;
      case MemIntensity::Medium:
        return 64;
      case MemIntensity::High:
        return 16;
      case MemIntensity::VeryHigh:
        return 4;
      default:
        panic("bad intensity");
    }
}

const char *
intensityName(MemIntensity intensity)
{
    switch (intensity) {
      case MemIntensity::Low:
        return "low";
      case MemIntensity::Medium:
        return "medium";
      case MemIntensity::High:
        return "high";
      case MemIntensity::VeryHigh:
        return "very-high";
      default:
        panic("bad intensity");
    }
}

MemoryContender::MemoryContender(MemIntensity intensity,
                                 Addr footprintBase,
                                 std::uint64_t footprintBytes,
                                 std::uint64_t seed)
    : intensity_(intensity), base_(footprintBase),
      footprint_(footprintBytes), rng_(seed)
{
}

unsigned
MemoryContender::step(Core &core)
{
    setWaitingOnQueue(false);
    if (outstanding_ >= kMaxOutstanding)
        return 0; // wait for a completion

    const Addr addr = base_ + (rng_.below(footprint_ / 64)) * 64;
    Cpu &cpu = core.cpu();
    auto onDone = [this, &cpu] {
        --outstanding_;
        cpu.wakeThread(*this);
    };

    bool accepted = false;
    if (cache::Cache *llc = cpu.llc()) {
        accepted = llc->access(addr, false, onDone);
    } else {
        dram::MemRequest req;
        req.paddr = addr;
        req.write = false;
        req.onComplete = [onDone](const dram::MemRequest &) { onDone(); };
        accepted = cpu.mem().enqueue(std::move(req));
    }
    if (!accepted) {
        setWaitingOnQueue(true);
        return 0;
    }
    ++outstanding_;
    ++accesses_;
    return gapCyclesFor(intensity_);
}

} // namespace cpu
} // namespace pimmmu

/**
 * @file
 * The software-thread abstraction executed by the modeled CPU cores.
 */

#ifndef PIMMMU_CPU_THREAD_HH
#define PIMMMU_CPU_THREAD_HH

#include <cstdint>

namespace pimmmu {
namespace cpu {

class Core;

/**
 * A runnable software thread. The core repeatedly calls step(); the
 * thread performs a small amount of work (issue a memory request,
 * transpose a line, spin) and reports how many core cycles it consumed.
 * Returning zero means the thread is stalled on an asynchronous event
 * (an outstanding memory access); the core then idles until the thread
 * is woken through Cpu::wakeThread.
 */
class SoftThread
{
  public:
    virtual ~SoftThread() = default;

    /** True once the thread's work is complete (never for contenders). */
    virtual bool finished() const = 0;

    /**
     * Make progress on @p core.
     * @return busy core cycles consumed, or 0 if blocked.
     */
    virtual unsigned step(Core &core) = 0;

    /** Threads built around AVX-512 copy loops draw extra power. */
    virtual bool usesAvx() const { return false; }

    /**
     * True for threads that sleep (release their core) when blocked,
     * e.g. a process waiting on a device interrupt. Spinning AVX copy
     * loops keep their core and return false.
     */
    virtual bool yieldsWhenBlocked() const { return false; }

    /** Short label for statistics. */
    virtual const char *label() const = 0;

    /**
     * True when the thread returned 0 from step() because a memory
     * controller queue was full (as opposed to its own in-flight
     * limits); such threads are retried when a queue drains.
     */
    bool waitingOnQueue() const { return waitingOnQueue_; }

  protected:
    void setWaitingOnQueue(bool value) { waitingOnQueue_ = value; }

  private:
    bool waitingOnQueue_ = false;
};

} // namespace cpu
} // namespace pimmmu

#endif // PIMMMU_CPU_THREAD_HH

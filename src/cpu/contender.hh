/**
 * @file
 * Co-located contender workloads for the resource-contention study
 * (paper Fig. 13): a compute-intensive spinlock-like thread whose
 * working set stays in on-chip caches, and a memory-intensive thread
 * whose access intensity is tunable from "low" to "very high".
 */

#ifndef PIMMMU_CPU_CONTENDER_HH
#define PIMMMU_CPU_CONTENDER_HH

#include "common/random.hh"
#include "cpu/cpu.hh"
#include "cpu/thread.hh"

namespace pimmmu {
namespace cpu {

/**
 * Compute-bound contender: burns core cycles forever, no off-chip
 * memory traffic.
 */
class ComputeContender : public SoftThread
{
  public:
    bool finished() const override { return false; }

    unsigned
    step(Core &) override
    {
        return kBurstCycles;
    }

    const char *label() const override { return "compute-contender"; }

  private:
    static constexpr unsigned kBurstCycles = 4096;
};

/** How aggressively a memory contender issues off-chip accesses. */
enum class MemIntensity
{
    Low,
    Medium,
    High,
    VeryHigh
};

/** Compute cycles between successive memory accesses per intensity. */
unsigned gapCyclesFor(MemIntensity intensity);
const char *intensityName(MemIntensity intensity);

/**
 * Memory-bound contender: a pointer-chase-like loop over a footprint
 * far larger than the LLC, issuing cacheable reads through the LLC
 * (mostly missing) with a bounded number in flight.
 */
class MemoryContender : public SoftThread
{
  public:
    /**
     * @param intensity      ratio of memory to non-memory instructions
     * @param footprintBase  start of the contender's DRAM working set
     * @param footprintBytes working-set size (use >> LLC capacity)
     * @param seed           deterministic RNG seed
     */
    MemoryContender(MemIntensity intensity, Addr footprintBase,
                    std::uint64_t footprintBytes, std::uint64_t seed);

    bool finished() const override { return false; }
    unsigned step(Core &core) override;
    const char *label() const override { return "memory-contender"; }

    std::uint64_t accesses() const { return accesses_; }

  private:
    MemIntensity intensity_;
    Addr base_;
    std::uint64_t footprint_;
    Rng rng_;
    unsigned outstanding_ = 0;
    std::uint64_t accesses_ = 0;
    static constexpr unsigned kMaxOutstanding = 16;
};

} // namespace cpu
} // namespace pimmmu

#endif // PIMMMU_CPU_CONTENDER_HH

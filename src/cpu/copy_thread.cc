#include "cpu/copy_thread.hh"

namespace pimmmu {
namespace cpu {

namespace {
constexpr std::uint64_t kLine = 64;
}

CopyThread::CopyThread(const CopyWork &work) : work_(work)
{
    // The copy loop reads a short run of consecutive lines from each
    // chip stream before moving to the next (the runtime buffers a
    // block per chip, then transposes), which keeps DRAM row locality.
    const std::uint64_t lines = work_.linesPerDpu;
    burst_ = 8;
    while (burst_ > 1 && lines % burst_ != 0)
        --burst_;
}

Addr
CopyThread::chipStreamAddr(std::uint64_t k) const
{
    // Decompose k into (super-block, chip, line-in-run): runs of
    // burst_ lines per chip stream, cycling over the 8 chips.
    const std::uint64_t super = k / (8 * burst_);
    const unsigned chip = static_cast<unsigned>((k / burst_) % 8);
    const std::uint64_t line = super * burst_ + (k % burst_);
    return work_.dpuHostBase[chip] + line * kLine;
}

Addr
CopyThread::readAddr(std::uint64_t k) const
{
    switch (work_.kind) {
      case CopyWork::Kind::DramToPim:
        return chipStreamAddr(k);
      case CopyWork::Kind::PimToDram:
        return work_.wireBase + k * kLine;
      case CopyWork::Kind::DramToDram:
        return work_.src + k * kLine;
    }
    panic("bad copy kind");
}

Addr
CopyThread::writeAddr(std::uint64_t k) const
{
    switch (work_.kind) {
      case CopyWork::Kind::DramToPim:
        return work_.wireBase + k * kLine;
      case CopyWork::Kind::PimToDram:
        return chipStreamAddr(k);
      case CopyWork::Kind::DramToDram:
        return work_.dst + k * kLine;
    }
    panic("bad copy kind");
}

unsigned
CopyThread::step(Core &core)
{
    const CpuConfig &cfg = core.cpu().config();
    dram::MemorySystem &mem = core.cpu().mem();
    const std::uint64_t total = work_.totalLines();
    const bool transpose = work_.kind != CopyWork::Kind::DramToDram;
    setWaitingOnQueue(false);
    if (startedAt_ == kTickMax)
        startedAt_ = core.eq().now();

    // Drain side first: transpose + store anything whose load returned.
    if (pendingTranspose_ > 0 && writesInflight_ < cfg.maxOutstandingWrites) {
        const Addr addr = writeAddr(writesIssued_);
        if (mem.canAccept(addr, true)) {
            dram::MemRequest req;
            req.paddr = addr;
            req.write = true;
            req.sourceId = 0;
            Cpu &cpu = core.cpu();
            req.onComplete = [this, &cpu](const dram::MemRequest &) {
                --writesInflight_;
                ++writesDone_;
                if (finished()) {
                    cpu.stats().counter("copy_lines") +=
                        work_.totalLines();
                    cpu.stats().average("copy_thread_us").sample(
                        static_cast<double>(cpu.eq().now() -
                                            startedAt_) /
                        1e6);
                }
                cpu.wakeThread(*this);
            };
            const bool ok = mem.enqueue(std::move(req));
            PIMMMU_ASSERT(ok, "enqueue after canAccept failed");
            --pendingTranspose_;
            ++writesIssued_;
            ++writesInflight_;
            return (transpose ? cfg.transposeCyclesPerLine : 0) +
                   cfg.writeIssueCycles;
        }
        setWaitingOnQueue(true);
    }

    // Fill side: issue the next wide load.
    if (readsIssued_ < total && readsInflight_ < cfg.maxOutstandingReads) {
        const Addr addr = readAddr(readsIssued_);
        if (mem.canAccept(addr, false)) {
            dram::MemRequest req;
            req.paddr = addr;
            req.write = false;
            Cpu &cpu = core.cpu();
            req.onComplete = [this, &cpu](const dram::MemRequest &) {
                --readsInflight_;
                ++pendingTranspose_;
                cpu.wakeThread(*this);
            };
            const bool ok = mem.enqueue(std::move(req));
            PIMMMU_ASSERT(ok, "enqueue after canAccept failed");
            ++readsIssued_;
            ++readsInflight_;
            return cfg.readIssueCycles;
        }
        setWaitingOnQueue(true);
    }

    return 0; // blocked on completions or queue space
}

} // namespace cpu
} // namespace pimmmu

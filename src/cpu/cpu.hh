/**
 * @file
 * The host CPU model: N cores driven by a round-robin OS scheduler with
 * a fixed preemption quantum (paper section V: 8 cores, 1.5 ms quantum).
 *
 * Cores are event-driven: a running thread consumes bursts of cycles;
 * when it stalls on memory, the core idles until the completion wakes
 * it. Per-core busy time (and AVX busy time) is tracked for the power
 * model and the Fig. 4 utilization plots.
 */

#ifndef PIMMMU_CPU_CPU_HH
#define PIMMMU_CPU_CPU_HH

#include <deque>
#include <functional>
#include <memory>
#include <vector>

#include "common/event_queue.hh"
#include "common/serialize.hh"
#include "common/stats.hh"
#include "common/types.hh"
#include "cpu/thread.hh"
#include "dram/memory_system.hh"

namespace pimmmu {
namespace cache {
class Cache;
}

namespace cpu {

/** CPU model tunables (defaults follow paper Table I / section V). */
struct CpuConfig
{
    unsigned cores = 8;
    std::uint64_t clockMhz = 3200;
    Tick quantumPs = Tick{3} * kPsPerMs / 2; //!< 1.5 ms RR quantum
    Tick ctxSwitchPs = 2 * kPsPerUs;

    /**
     * Per-thread limits of the AVX-512 gather/transpose/scatter copy
     * loop. The loop demand-loads one line from each chip stream
     * before transposing, so only a handful of loads overlap — which
     * is why the real runtime saturates 8 cores for ~9 GB/s.
     */
    unsigned maxOutstandingReads = 10;
    unsigned maxOutstandingWrites = 8; //!< write-combining buffers
    unsigned readIssueCycles = 4;
    unsigned writeIssueCycles = 2;
    unsigned transposeCyclesPerLine = 10;

    Tick periodPs() const { return periodPsFromMhz(clockMhz); }
};

class Cpu;

/** One out-of-order core, modeled at thread-step granularity. */
class Core
{
  public:
    Core(EventQueue &eq, Cpu &cpu, unsigned id, Tick periodPs);

    unsigned id() const { return id_; }
    SoftThread *current() const { return thread_; }

    /** Total busy picoseconds (including context-switch overhead). */
    Tick busyPs() const { return busyPs_; }
    Tick avxBusyPs() const { return avxBusyPs_; }

    /** Checkpoint restore of the cumulative busy clocks. */
    void
    restoreBusy(Tick busyPs, Tick avxBusyPs)
    {
        busyPs_ = busyPs;
        avxBusyPs_ = avxBusyPs;
    }

    EventQueue &eq() { return eq_; }
    Cpu &cpu() { return cpu_; }

  private:
    friend class Cpu;

    /** Install @p thread (nullptr idles the core). */
    void assign(SoftThread *thread, bool chargeSwitch);

    /**
     * Vacate the core: settle blocked time, close the occupancy span
     * on the timeline, and drop the thread pointer. The single exit
     * path for every way a thread leaves a core.
     */
    void clearThread();

    /** Ensure the step loop is scheduled. */
    void arm(Tick delay = 0);

    void stepLoop();

    /**
     * Account time spent spinning on a stalled non-yielding thread
     * (an AVX copy loop waiting on memory keeps its core 100% busy).
     */
    void settleBlocked();

    EventQueue &eq_;
    Cpu &cpu_;
    unsigned id_;
    Tick periodPs_;
    SoftThread *thread_ = nullptr;
    bool pendingStep_ = false;
    Tick blockedSince_ = kTickMax;
    Tick runStart_ = kTickMax;
    Tick busyPs_ = 0;
    Tick avxBusyPs_ = 0;
    unsigned timelineTrack_ = 0;
};

/**
 * The CPU: cores + run queue + quantum-based round-robin scheduler.
 */
class Cpu
{
  public:
    Cpu(EventQueue &eq, const CpuConfig &config,
        dram::MemorySystem &mem, cache::Cache *llc = nullptr);

    ~Cpu();

    const CpuConfig &config() const { return config_; }
    dram::MemorySystem &mem() { return mem_; }
    cache::Cache *llc() { return llc_; }
    EventQueue &eq() { return eq_; }

    /** Add a runnable thread to the tail of the run queue. */
    void addThread(std::shared_ptr<SoftThread> thread);

    /**
     * Add a set of threads and invoke @p onDone once every one of them
     * has finished.
     */
    void runJob(std::vector<std::shared_ptr<SoftThread>> threads,
                std::function<void()> onDone);

    /**
     * Called by completion handlers when @p thread can make progress
     * again. Only has an effect if the thread currently holds a core.
     */
    void wakeThread(SoftThread &thread);

    /** Stop scheduling (contender threads never finish on their own). */
    void shutdown();

    unsigned numCores() const { return config_.cores; }
    Core &core(unsigned i) { return *cores_[i]; }

    Tick
    totalBusyPs() const
    {
        Tick total = 0;
        for (const auto &core : cores_)
            total += core->busyPs();
        return total;
    }

    Tick
    totalAvxBusyPs() const
    {
        Tick total = 0;
        for (const auto &core : cores_)
            total += core->avxBusyPs();
        return total;
    }

    stats::Group &stats() { return stats_; }

    /**
     * Checkpoint per-core busy clocks, the rotation victim cursor and
     * stats. Only valid when no software thread is runnable (the run
     * queue drains at every quiesced point; contender threads pin the
     * CPU forever and are incompatible with checkpointing).
     */
    void saveState(serialize::ByteSink &out) const;

    /** Inverse of saveState. @return false on a malformed payload. */
    bool restoreState(serialize::ByteSource &in);

  private:
    friend class Core;

    /** A core's thread finished: pick the next runnable one. */
    void onThreadDone(Core &core);

    /** A sleeping thread released its core. */
    void onThreadYield(Core &core);

    /** Quantum expiry: rotate every core's thread. */
    void rotate();

    /**
     * Put a freshly runnable thread on a core now: an idle core if one
     * exists, otherwise preempt a victim (wakeup preemption; the victim
     * goes to the back of the run queue).
     */
    void dispatch(SoftThread *thread);

    bool isQueued(const SoftThread *thread) const;
    void scheduleRotation();
    void checkJobs();
    SoftThread *popRunnable();

    EventQueue &eq_;
    CpuConfig config_;
    dram::MemorySystem &mem_;
    cache::Cache *llc_;

    std::vector<std::unique_ptr<Core>> cores_;
    std::deque<SoftThread *> runQueue_;
    std::vector<std::shared_ptr<SoftThread>> allThreads_;

    struct Job
    {
        std::vector<SoftThread *> threads;
        std::function<void()> onDone;
        bool done = false;
    };

    std::vector<Job> jobs_;
    bool rotationScheduled_ = false;
    bool shutdown_ = false;
    unsigned victimCursor_ = 0;
    stats::Group stats_;
};

} // namespace cpu
} // namespace pimmmu

#endif // PIMMMU_CPU_CPU_HH

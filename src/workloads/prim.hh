/**
 * @file
 * The 16 memory-intensive PrIM workloads used in the paper's end-to-end
 * evaluation (Fig. 16), as transfer/kernel descriptors.
 *
 * The paper measures kernel time on real UPMEM hardware; we substitute
 * per-workload analytic kernel models (DESIGN.md, substitution table)
 * whose constants are set so the baseline's transfer-time share of
 * end-to-end execution matches the published characterization (up to
 * 99.7% for BS, marginal for TS, ~64% on average).
 */

#ifndef PIMMMU_WORKLOADS_PRIM_HH
#define PIMMMU_WORKLOADS_PRIM_HH

#include <cstdint>
#include <vector>

#include "pim/kernel_model.hh"

namespace pimmmu {
namespace workloads {

/** One PrIM workload's transfer/compute profile. */
struct PrimWorkload
{
    const char *name;
    const char *description;
    /** DRAM->PIM bytes per DPU (inputs). */
    std::uint64_t inputBytesPerDpu;
    /** PIM->DRAM bytes per DPU (results). */
    std::uint64_t outputBytesPerDpu;
    /** Analytic kernel-time model. */
    device::KernelModel kernel;
};

/** The 16-workload suite (PrIM defaults scaled to per-DPU shares). */
const std::vector<PrimWorkload> &primSuite();

/** Look up a workload by name; fatal() if unknown. */
const PrimWorkload &primWorkload(const char *name);

} // namespace workloads
} // namespace pimmmu

#endif // PIMMMU_WORKLOADS_PRIM_HH

#include "workloads/kernels.hh"

namespace pimmmu {
namespace workloads {

DpuKernel
vecAddKernel(std::uint64_t elemsPerDpu, Addr aOff, Addr bOff, Addr outOff)
{
    return [=](device::Dpu &dpu, unsigned) {
        for (std::uint64_t i = 0; i < elemsPerDpu; ++i) {
            const auto a = dpu.load<std::int32_t>(aOff + i * 4);
            const auto b = dpu.load<std::int32_t>(bOff + i * 4);
            dpu.store<std::int32_t>(outOff + i * 4, a + b);
        }
    };
}

DpuKernel
reduceKernel(std::uint64_t elemsPerDpu, Addr inOff, Addr outOff)
{
    return [=](device::Dpu &dpu, unsigned) {
        std::int64_t sum = 0;
        for (std::uint64_t i = 0; i < elemsPerDpu; ++i)
            sum += dpu.load<std::int32_t>(inOff + i * 4);
        dpu.store<std::int64_t>(outOff, sum);
    };
}

DpuKernel
histogramKernel(std::uint64_t bytesPerDpu, Addr inOff, Addr outOff)
{
    return [=](device::Dpu &dpu, unsigned) {
        std::uint32_t bins[256] = {};
        for (std::uint64_t i = 0; i < bytesPerDpu; ++i)
            ++bins[dpu.load<std::uint8_t>(inOff + i)];
        for (unsigned b = 0; b < 256; ++b)
            dpu.store<std::uint32_t>(outOff + b * 4, bins[b]);
    };
}

DpuKernel
gemvKernel(std::uint64_t rows, std::uint64_t cols, Addr mOff, Addr xOff,
           Addr yOff)
{
    return [=](device::Dpu &dpu, unsigned) {
        for (std::uint64_t r = 0; r < rows; ++r) {
            std::int64_t acc = 0;
            for (std::uint64_t c = 0; c < cols; ++c) {
                const auto m =
                    dpu.load<std::int32_t>(mOff + (r * cols + c) * 4);
                const auto x = dpu.load<std::int32_t>(xOff + c * 4);
                acc += std::int64_t{m} * x;
            }
            dpu.store<std::int32_t>(yOff + r * 4,
                                    static_cast<std::int32_t>(acc));
        }
    };
}

DpuKernel
selectKernel(std::uint64_t elemsPerDpu, Addr inOff, Addr outOff,
             std::int32_t threshold)
{
    return [=](device::Dpu &dpu, unsigned) {
        std::int64_t count = 0;
        for (std::uint64_t i = 0; i < elemsPerDpu; ++i) {
            const auto v = dpu.load<std::int32_t>(inOff + i * 4);
            if (v > threshold) {
                dpu.store<std::int32_t>(outOff + 8 + count * 4, v);
                ++count;
            }
        }
        dpu.store<std::int64_t>(outOff, count);
    };
}

std::vector<std::int32_t>
hostVecAdd(const std::vector<std::int32_t> &a,
           const std::vector<std::int32_t> &b)
{
    std::vector<std::int32_t> out(a.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        out[i] = a[i] + b[i];
    return out;
}

std::int64_t
hostReduce(const std::vector<std::int32_t> &in)
{
    std::int64_t sum = 0;
    for (auto v : in)
        sum += v;
    return sum;
}

std::vector<std::uint32_t>
hostHistogram(const std::vector<std::uint8_t> &in)
{
    std::vector<std::uint32_t> bins(256, 0);
    for (auto v : in)
        ++bins[v];
    return bins;
}

std::vector<std::int32_t>
hostGemv(const std::vector<std::int32_t> &m,
         const std::vector<std::int32_t> &x, std::uint64_t rows,
         std::uint64_t cols)
{
    std::vector<std::int32_t> y(rows);
    for (std::uint64_t r = 0; r < rows; ++r) {
        std::int64_t acc = 0;
        for (std::uint64_t c = 0; c < cols; ++c)
            acc += std::int64_t{m[r * cols + c]} * x[c];
        y[r] = static_cast<std::int32_t>(acc);
    }
    return y;
}

} // namespace workloads
} // namespace pimmmu

#include "workloads/prim_impl.hh"

#include <algorithm>
#include <cstring>

#include "common/random.hh"
#include "telemetry/stats_registry.hh"
#include "workloads/prim.hh"

namespace pimmmu {
namespace workloads {

namespace {

constexpr std::uint64_t kI32 = sizeof(std::int32_t);

std::uint64_t
pad64(std::uint64_t bytes)
{
    return roundUp(bytes, 64);
}

/** Write a vector of POD values into the host store. */
template <typename T>
void
writeHost(sim::System &sys, Addr addr, const std::vector<T> &v)
{
    sys.mem().store().write(addr, v.data(), v.size() * sizeof(T));
}

template <typename T>
std::vector<T>
readHost(sim::System &sys, Addr addr, std::size_t n)
{
    std::vector<T> v(n);
    sys.mem().store().read(addr, v.data(), n * sizeof(T));
    return v;
}

/** Common scaffolding: per-DPU host buffer allocation. */
class PrimBase : public PrimBenchmark
{
  public:
    explicit PrimBase(const PrimRunConfig &config) : PrimBenchmark(config)
    {
        if (config.numDpus == 0 || config.numDpus % 8 != 0)
            fatal("numDpus must be a non-zero multiple of 8");
        if (config.elemsPerDpu == 0 || config.elemsPerDpu % 64 != 0)
            fatal("elemsPerDpu must be a non-zero multiple of 64");
    }

    /** Allocate one region of @p bytesPerDpu (padded) per DPU. */
    std::vector<Addr>
    allocPerDpu(sim::System &sys, std::uint64_t bytesPerDpu)
    {
        const std::uint64_t stride = pad64(bytesPerDpu);
        const Addr base =
            sys.allocDram(stride * config_.numDpus, 64);
        std::vector<Addr> addrs(config_.numDpus);
        for (unsigned d = 0; d < config_.numDpus; ++d)
            addrs[d] = base + Addr{d} * stride;
        return addrs;
    }

    XferPlan
    plan(core::XferDirection dir, const std::vector<Addr> &addrs,
         std::uint64_t bytesPerDpu, Addr heapOffset) const
    {
        XferPlan p;
        p.dir = dir;
        p.hostAddrs = addrs;
        p.bytesPerDpu = pad64(bytesPerDpu);
        p.heapOffset = heapOffset;
        return p;
    }
};

// --------------------------------------------------------------------
// VA: element-wise vector addition.
// --------------------------------------------------------------------
class VaBench : public PrimBase
{
  public:
    using PrimBase::PrimBase;
    const char *name() const override { return "VA"; }

    void
    prepare(sim::System &sys) override
    {
        const std::uint64_t bytes = config_.elemsPerDpu * kI32;
        a_ = allocPerDpu(sys, bytes);
        b_ = allocPerDpu(sys, bytes);
        c_ = allocPerDpu(sys, bytes);
        Rng rng(config_.seed);
        hostA_.resize(config_.numDpus * config_.elemsPerDpu);
        hostB_.resize(hostA_.size());
        for (auto &v : hostA_)
            v = static_cast<std::int32_t>(rng() & 0xffffff);
        for (auto &v : hostB_)
            v = static_cast<std::int32_t>(rng() & 0xffffff);
        for (unsigned d = 0; d < config_.numDpus; ++d) {
            sys.mem().store().write(
                a_[d], hostA_.data() + d * config_.elemsPerDpu,
                config_.elemsPerDpu * kI32);
            sys.mem().store().write(
                b_[d], hostB_.data() + d * config_.elemsPerDpu,
                config_.elemsPerDpu * kI32);
        }
    }

    std::vector<XferPlan>
    inputTransfers() const override
    {
        const std::uint64_t bytes = config_.elemsPerDpu * kI32;
        return {plan(core::XferDirection::DramToPim, a_, bytes, 0),
                plan(core::XferDirection::DramToPim, b_, bytes,
                     pad64(bytes))};
    }

    DpuKernel
    kernel() const override
    {
        const std::uint64_t s = pad64(config_.elemsPerDpu * kI32);
        return vecAddKernel(config_.elemsPerDpu, 0, s, 2 * s);
    }

    std::vector<XferPlan>
    outputTransfers() const override
    {
        const std::uint64_t bytes = config_.elemsPerDpu * kI32;
        return {plan(core::XferDirection::PimToDram, c_, bytes,
                     2 * pad64(bytes))};
    }

    bool
    verify(sim::System &sys) const override
    {
        for (unsigned d = 0; d < config_.numDpus; ++d) {
            const auto out = readHost<std::int32_t>(
                sys, c_[d], config_.elemsPerDpu);
            for (std::uint64_t i = 0; i < config_.elemsPerDpu; ++i) {
                const std::size_t g = d * config_.elemsPerDpu + i;
                if (out[i] != hostA_[g] + hostB_[g])
                    return false;
            }
        }
        return true;
    }

  private:
    std::vector<Addr> a_, b_, c_;
    std::vector<std::int32_t> hostA_, hostB_;
};

// --------------------------------------------------------------------
// GEMV: per-DPU row block times a broadcast vector.
// --------------------------------------------------------------------
class GemvBench : public PrimBase
{
  public:
    using PrimBase::PrimBase;
    const char *name() const override { return "GEMV"; }

    void
    prepare(sim::System &sys) override
    {
        cols_ = 64;
        rows_ = config_.elemsPerDpu / cols_;
        const std::uint64_t mBytes = rows_ * cols_ * kI32;
        m_ = allocPerDpu(sys, mBytes);
        x_ = allocPerDpu(sys, cols_ * kI32);
        y_ = allocPerDpu(sys, rows_ * kI32);

        Rng rng(config_.seed);
        hostM_.resize(config_.numDpus * rows_ * cols_);
        hostX_.resize(cols_);
        for (auto &v : hostM_)
            v = static_cast<std::int32_t>(rng() % 256) - 128;
        for (auto &v : hostX_)
            v = static_cast<std::int32_t>(rng() % 256) - 128;
        for (unsigned d = 0; d < config_.numDpus; ++d) {
            sys.mem().store().write(m_[d],
                                    hostM_.data() + d * rows_ * cols_,
                                    rows_ * cols_ * kI32);
            writeHost(sys, x_[d], hostX_); // broadcast
        }
    }

    std::vector<XferPlan>
    inputTransfers() const override
    {
        return {plan(core::XferDirection::DramToPim, m_,
                     rows_ * cols_ * kI32, 0),
                plan(core::XferDirection::DramToPim, x_, cols_ * kI32,
                     pad64(rows_ * cols_ * kI32))};
    }

    DpuKernel
    kernel() const override
    {
        const Addr mEnd = pad64(rows_ * cols_ * kI32);
        const Addr xEnd = mEnd + pad64(cols_ * kI32);
        return gemvKernel(rows_, cols_, 0, mEnd, xEnd);
    }

    std::vector<XferPlan>
    outputTransfers() const override
    {
        const Addr mEnd = pad64(rows_ * cols_ * kI32);
        const Addr xEnd = mEnd + pad64(cols_ * kI32);
        return {plan(core::XferDirection::PimToDram, y_, rows_ * kI32,
                     xEnd)};
    }

    bool
    verify(sim::System &sys) const override
    {
        for (unsigned d = 0; d < config_.numDpus; ++d) {
            std::vector<std::int32_t> block(
                hostM_.begin() + d * rows_ * cols_,
                hostM_.begin() + (d + 1) * rows_ * cols_);
            const auto expect = hostGemv(block, hostX_, rows_, cols_);
            const auto got =
                readHost<std::int32_t>(sys, y_[d], rows_);
            if (got != expect)
                return false;
        }
        return true;
    }

  private:
    std::uint64_t rows_ = 0, cols_ = 0;
    std::vector<Addr> m_, x_, y_;
    std::vector<std::int32_t> hostM_, hostX_;
};

// --------------------------------------------------------------------
// SpMV: CSR block per DPU, dense broadcast x.
// Input layout per DPU: [rowptr R+1][colidx NNZ][vals NNZ][x C].
// --------------------------------------------------------------------
class SpmvBench : public PrimBase
{
  public:
    using PrimBase::PrimBase;
    const char *name() const override { return "SpMV"; }

    void
    prepare(sim::System &sys) override
    {
        rows_ = config_.elemsPerDpu / 8;
        cols_ = 64;
        Rng rng(config_.seed + 1);

        hostX_.resize(cols_);
        for (auto &v : hostX_)
            v = static_cast<std::int32_t>(rng() % 64) - 32;

        rowptr_.resize(config_.numDpus);
        colidx_.resize(config_.numDpus);
        vals_.resize(config_.numDpus);
        std::uint64_t maxWords = 0;
        for (unsigned d = 0; d < config_.numDpus; ++d) {
            auto &rp = rowptr_[d];
            auto &ci = colidx_[d];
            auto &va = vals_[d];
            rp.push_back(0);
            for (std::uint64_t r = 0; r < rows_; ++r) {
                const unsigned deg =
                    1 + static_cast<unsigned>(rng.below(4));
                for (unsigned e = 0; e < deg; ++e) {
                    ci.push_back(
                        static_cast<std::int32_t>(rng.below(cols_)));
                    va.push_back(
                        static_cast<std::int32_t>(rng() % 32) - 16);
                }
                rp.push_back(static_cast<std::int32_t>(ci.size()));
            }
            maxWords = std::max<std::uint64_t>(
                maxWords,
                rp.size() + 2 * ci.size() + hostX_.size() + 4);
        }

        inBytes_ = pad64(maxWords * kI32);
        in_ = allocPerDpu(sys, inBytes_);
        y_ = allocPerDpu(sys, rows_ * kI32);

        for (unsigned d = 0; d < config_.numDpus; ++d) {
            // Serialized header: [R, NNZ] then payloads.
            std::vector<std::int32_t> blob;
            blob.push_back(static_cast<std::int32_t>(rows_));
            blob.push_back(
                static_cast<std::int32_t>(colidx_[d].size()));
            blob.insert(blob.end(), rowptr_[d].begin(),
                        rowptr_[d].end());
            blob.insert(blob.end(), colidx_[d].begin(),
                        colidx_[d].end());
            blob.insert(blob.end(), vals_[d].begin(), vals_[d].end());
            blob.insert(blob.end(), hostX_.begin(), hostX_.end());
            writeHost(sys, in_[d], blob);
        }
    }

    std::vector<XferPlan>
    inputTransfers() const override
    {
        return {plan(core::XferDirection::DramToPim, in_, inBytes_, 0)};
    }

    DpuKernel
    kernel() const override
    {
        const Addr outOff = inBytes_;
        return [outOff](device::Dpu &dpu, unsigned) {
            const auto rows = dpu.load<std::int32_t>(0);
            const auto nnz = dpu.load<std::int32_t>(4);
            const Addr rowptr = 8;
            const Addr colidx = rowptr + (rows + 1) * kI32;
            const Addr vals = colidx + nnz * kI32;
            const Addr x = vals + nnz * kI32;
            for (std::int32_t r = 0; r < rows; ++r) {
                const auto lo =
                    dpu.load<std::int32_t>(rowptr + r * kI32);
                const auto hi =
                    dpu.load<std::int32_t>(rowptr + (r + 1) * kI32);
                std::int64_t acc = 0;
                for (std::int32_t e = lo; e < hi; ++e) {
                    const auto c =
                        dpu.load<std::int32_t>(colidx + e * kI32);
                    const auto v =
                        dpu.load<std::int32_t>(vals + e * kI32);
                    acc += std::int64_t{v} *
                           dpu.load<std::int32_t>(x + c * kI32);
                }
                dpu.store<std::int32_t>(
                    outOff + r * kI32,
                    static_cast<std::int32_t>(acc));
            }
        };
    }

    std::vector<XferPlan>
    outputTransfers() const override
    {
        return {plan(core::XferDirection::PimToDram, y_, rows_ * kI32,
                     inBytes_)};
    }

    bool
    verify(sim::System &sys) const override
    {
        for (unsigned d = 0; d < config_.numDpus; ++d) {
            const auto got = readHost<std::int32_t>(sys, y_[d], rows_);
            for (std::uint64_t r = 0; r < rows_; ++r) {
                std::int64_t acc = 0;
                for (std::int32_t e = rowptr_[d][r];
                     e < rowptr_[d][r + 1]; ++e) {
                    acc += std::int64_t{vals_[d][e]} *
                           hostX_[colidx_[d][e]];
                }
                if (got[r] != static_cast<std::int32_t>(acc))
                    return false;
            }
        }
        return true;
    }

  private:
    std::uint64_t rows_ = 0, cols_ = 0, inBytes_ = 0;
    std::vector<Addr> in_, y_;
    std::vector<std::vector<std::int32_t>> rowptr_, colidx_, vals_;
    std::vector<std::int32_t> hostX_;
};

// --------------------------------------------------------------------
// SEL: stream select (keep values above a threshold).
// Output layout per DPU: [count i64][selected ...].
// --------------------------------------------------------------------
class SelBench : public PrimBase
{
  public:
    explicit SelBench(const PrimRunConfig &config, bool unique = false)
        : PrimBase(config), unique_(unique)
    {
    }

    const char *name() const override { return unique_ ? "UNI" : "SEL"; }

    void
    prepare(sim::System &sys) override
    {
        const std::uint64_t bytes = config_.elemsPerDpu * kI32;
        in_ = allocPerDpu(sys, bytes);
        outBytes_ = pad64(8 + bytes);
        out_ = allocPerDpu(sys, outBytes_);
        Rng rng(config_.seed + 2);
        hostIn_.resize(config_.numDpus * config_.elemsPerDpu);
        std::int32_t prev = 0;
        for (auto &v : hostIn_) {
            if (unique_) {
                // Non-decreasing stream with duplicate runs.
                prev += static_cast<std::int32_t>(rng.below(3));
                v = prev;
            } else {
                v = static_cast<std::int32_t>(rng() % 1000);
            }
        }
        for (unsigned d = 0; d < config_.numDpus; ++d) {
            sys.mem().store().write(
                in_[d], hostIn_.data() + d * config_.elemsPerDpu,
                config_.elemsPerDpu * kI32);
        }
    }

    std::vector<XferPlan>
    inputTransfers() const override
    {
        return {plan(core::XferDirection::DramToPim, in_,
                     config_.elemsPerDpu * kI32, 0)};
    }

    DpuKernel
    kernel() const override
    {
        const std::uint64_t elems = config_.elemsPerDpu;
        const Addr outOff = pad64(elems * kI32);
        if (!unique_)
            return selectKernel(elems, 0, outOff, kThreshold);
        return [elems, outOff](device::Dpu &dpu, unsigned) {
            std::int64_t count = 0;
            std::int32_t last = 0;
            for (std::uint64_t i = 0; i < elems; ++i) {
                const auto v = dpu.load<std::int32_t>(i * kI32);
                if (i == 0 || v != last) {
                    dpu.store<std::int32_t>(outOff + 8 + count * kI32,
                                            v);
                    ++count;
                }
                last = v;
            }
            dpu.store<std::int64_t>(outOff, count);
        };
    }

    std::vector<XferPlan>
    outputTransfers() const override
    {
        return {plan(core::XferDirection::PimToDram, out_, outBytes_,
                     pad64(config_.elemsPerDpu * kI32))};
    }

    bool
    verify(sim::System &sys) const override
    {
        for (unsigned d = 0; d < config_.numDpus; ++d) {
            // Host reference.
            std::vector<std::int32_t> expect;
            const auto *base =
                hostIn_.data() + d * config_.elemsPerDpu;
            for (std::uint64_t i = 0; i < config_.elemsPerDpu; ++i) {
                if (unique_) {
                    if (i == 0 || base[i] != base[i - 1])
                        expect.push_back(base[i]);
                } else if (base[i] > kThreshold) {
                    expect.push_back(base[i]);
                }
            }
            std::int64_t count = 0;
            sys.mem().store().read(out_[d], &count, 8);
            if (count != static_cast<std::int64_t>(expect.size()))
                return false;
            const auto got = readHost<std::int32_t>(
                sys, out_[d] + 8, expect.size());
            if (got != expect)
                return false;
        }
        return true;
    }

  private:
    static constexpr std::int32_t kThreshold = 500;
    bool unique_;
    std::uint64_t outBytes_ = 0;
    std::vector<Addr> in_, out_;
    std::vector<std::int32_t> hostIn_;
};

// --------------------------------------------------------------------
// BS: binary search of Q queries over a per-DPU sorted array.
// Input layout: [sorted E][queries Q]; output: [index Q].
// --------------------------------------------------------------------
class BsBench : public PrimBase
{
  public:
    using PrimBase::PrimBase;
    const char *name() const override { return "BS"; }

    void
    prepare(sim::System &sys) override
    {
        queries_ = config_.elemsPerDpu / 4;
        const std::uint64_t bytes =
            (config_.elemsPerDpu + queries_) * kI32;
        in_ = allocPerDpu(sys, bytes);
        out_ = allocPerDpu(sys, queries_ * kI32);

        Rng rng(config_.seed + 3);
        hostSorted_.resize(config_.numDpus);
        hostQueries_.resize(config_.numDpus);
        for (unsigned d = 0; d < config_.numDpus; ++d) {
            auto &sorted = hostSorted_[d];
            sorted.resize(config_.elemsPerDpu);
            std::int32_t acc = 0;
            for (auto &v : sorted) {
                acc += static_cast<std::int32_t>(rng.below(5));
                v = acc;
            }
            auto &queries = hostQueries_[d];
            queries.resize(queries_);
            for (auto &q : queries)
                q = static_cast<std::int32_t>(rng.below(acc + 1));
            std::vector<std::int32_t> blob = sorted;
            blob.insert(blob.end(), queries.begin(), queries.end());
            writeHost(sys, in_[d], blob);
        }
    }

    std::vector<XferPlan>
    inputTransfers() const override
    {
        return {plan(core::XferDirection::DramToPim, in_,
                     (config_.elemsPerDpu + queries_) * kI32, 0)};
    }

    DpuKernel
    kernel() const override
    {
        const std::uint64_t elems = config_.elemsPerDpu;
        const std::uint64_t q = queries_;
        const Addr outOff = pad64((elems + q) * kI32);
        return [elems, q, outOff](device::Dpu &dpu, unsigned) {
            const Addr queries = elems * kI32;
            for (std::uint64_t i = 0; i < q; ++i) {
                const auto key =
                    dpu.load<std::int32_t>(queries + i * kI32);
                std::uint64_t lo = 0, hi = elems;
                while (lo < hi) {
                    const std::uint64_t mid = (lo + hi) / 2;
                    if (dpu.load<std::int32_t>(mid * kI32) < key)
                        lo = mid + 1;
                    else
                        hi = mid;
                }
                dpu.store<std::int32_t>(
                    outOff + i * kI32,
                    static_cast<std::int32_t>(lo));
            }
        };
    }

    std::vector<XferPlan>
    outputTransfers() const override
    {
        return {plan(core::XferDirection::PimToDram, out_,
                     queries_ * kI32,
                     pad64((config_.elemsPerDpu + queries_) * kI32))};
    }

    bool
    verify(sim::System &sys) const override
    {
        for (unsigned d = 0; d < config_.numDpus; ++d) {
            const auto got =
                readHost<std::int32_t>(sys, out_[d], queries_);
            for (std::uint64_t i = 0; i < queries_; ++i) {
                const auto it = std::lower_bound(
                    hostSorted_[d].begin(), hostSorted_[d].end(),
                    hostQueries_[d][i]);
                if (got[i] != static_cast<std::int32_t>(
                                  it - hostSorted_[d].begin()))
                    return false;
            }
        }
        return true;
    }

  private:
    std::uint64_t queries_ = 0;
    std::vector<Addr> in_, out_;
    std::vector<std::vector<std::int32_t>> hostSorted_, hostQueries_;
};

} // namespace

} // namespace workloads
} // namespace pimmmu

#include "workloads/prim_impl_part2.inc"

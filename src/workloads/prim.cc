#include "workloads/prim.hh"

#include <cstring>

#include "common/logging.hh"

namespace pimmmu {
namespace workloads {

namespace {

PrimWorkload
make(const char *name, const char *description, std::uint64_t inBytes,
     std::uint64_t outBytes, double cyclesPerByte)
{
    PrimWorkload w;
    w.name = name;
    w.description = description;
    w.inputBytesPerDpu = inBytes;
    w.outputBytesPerDpu = outBytes;
    w.kernel.cyclesPerByte = cyclesPerByte;
    w.kernel.launchOverheadUs = 30.0;
    return w;
}

// Per-DPU transfer footprints are the PrIM defaults scaled down 4x so
// the cycle-level simulation of all 16 workloads completes quickly;
// kernel constants are per-byte, so the transfer/kernel split that
// Fig. 16 depends on is scale-invariant (modulo launch overhead).
constexpr std::uint64_t kIn = 16 * kKiB;

const std::vector<PrimWorkload> &
buildSuite()
{
    static const std::vector<PrimWorkload> suite = {
        make("VA", "vector addition", kIn, 8 * kKiB, 4.5),
        make("GEMV", "dense matrix-vector multiply", kIn, 128, 4.0),
        make("SpMV", "sparse matrix-vector multiply", kIn, 1 * kKiB,
             10.0),
        make("SEL", "stream select (predicate filter)", kIn, 8 * kKiB,
             2.0),
        make("UNI", "stream unique", kIn, 8 * kKiB, 3.0),
        make("BS", "binary search", kIn, 128, 0.07),
        make("TS", "time series analysis (matrix profile)", kIn, 128,
             430.0),
        make("BFS", "breadth-first search", kIn, 4 * kKiB, 42.0),
        make("MLP", "multilayer perceptron inference", kIn, 4 * kKiB,
             19.0),
        make("NW", "Needleman-Wunsch alignment", kIn, 8 * kKiB, 34.0),
        make("HST-S", "histogram (small bins)", kIn, 256, 7.5),
        make("HST-L", "histogram (large bins)", kIn, 2 * kKiB, 13.0),
        make("RED", "reduction", kIn, 64, 3.0),
        make("SCAN-SSA", "prefix scan (scan-scan-add)", kIn, kIn, 11.0),
        make("SCAN-RSS", "prefix scan (reduce-scan-scan)", kIn, kIn,
             15.0),
        make("TRNS", "matrix transposition", kIn, kIn, 11.0),
    };
    return suite;
}

} // namespace

const std::vector<PrimWorkload> &
primSuite()
{
    return buildSuite();
}

const PrimWorkload &
primWorkload(const char *name)
{
    for (const auto &w : primSuite()) {
        if (std::strcmp(w.name, name) == 0)
            return w;
    }
    fatal("unknown PrIM workload '", name, "'");
}

} // namespace workloads
} // namespace pimmmu

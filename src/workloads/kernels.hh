/**
 * @file
 * Functional DPU kernels (C++ callables over MRAM) plus host-side
 * reference implementations, used by the examples and the end-to-end
 * correctness tests. Each kernel follows the SPMD model: the same
 * program runs on every participating DPU over its private MRAM slice.
 */

#ifndef PIMMMU_WORKLOADS_KERNELS_HH
#define PIMMMU_WORKLOADS_KERNELS_HH

#include <cstdint>
#include <functional>
#include <vector>

#include "pim/dpu.hh"

namespace pimmmu {
namespace workloads {

using DpuKernel = std::function<void(device::Dpu &, unsigned)>;

/** out[i] = a[i] + b[i] over int32 elements (PrIM VA). */
DpuKernel vecAddKernel(std::uint64_t elemsPerDpu, Addr aOff, Addr bOff,
                       Addr outOff);

/** 64-bit sum of int32 input, stored at outOff (PrIM RED). */
DpuKernel reduceKernel(std::uint64_t elemsPerDpu, Addr inOff,
                       Addr outOff);

/** 256-bin byte histogram, uint32 bins at outOff (PrIM HST). */
DpuKernel histogramKernel(std::uint64_t bytesPerDpu, Addr inOff,
                          Addr outOff);

/**
 * y = M * x for this DPU's row block: rows x cols int32 matrix at mOff
 * (row-major), x (cols int32) at xOff, y (rows int32) at yOff
 * (PrIM GEMV).
 */
DpuKernel gemvKernel(std::uint64_t rows, std::uint64_t cols, Addr mOff,
                     Addr xOff, Addr yOff);

/**
 * Stream select: copy int32 elements greater than @p threshold to
 * outOff + 8, storing the survivor count (int64) at outOff
 * (PrIM SEL).
 */
DpuKernel selectKernel(std::uint64_t elemsPerDpu, Addr inOff,
                       Addr outOff, std::int32_t threshold);

// Host-side references for verification.
std::vector<std::int32_t> hostVecAdd(const std::vector<std::int32_t> &a,
                                     const std::vector<std::int32_t> &b);
std::int64_t hostReduce(const std::vector<std::int32_t> &in);
std::vector<std::uint32_t>
hostHistogram(const std::vector<std::uint8_t> &in);
std::vector<std::int32_t> hostGemv(const std::vector<std::int32_t> &m,
                                   const std::vector<std::int32_t> &x,
                                   std::uint64_t rows,
                                   std::uint64_t cols);

} // namespace workloads
} // namespace pimmmu

#endif // PIMMMU_WORKLOADS_KERNELS_HH

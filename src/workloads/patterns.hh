/**
 * @file
 * Address-pattern generators for bandwidth microbenchmarks
 * (paper Fig. 8: sequential and strided access patterns).
 */

#ifndef PIMMMU_WORKLOADS_PATTERNS_HH
#define PIMMMU_WORKLOADS_PATTERNS_HH

#include <cstdint>
#include <vector>

#include "common/random.hh"
#include "common/types.hh"

namespace pimmmu {
namespace workloads {

/** @p count line addresses starting at @p base, 64 B apart. */
std::vector<Addr> sequentialPattern(Addr base, std::size_t count);

/**
 * @p count line addresses @p strideBytes apart (wrapping within
 * @p regionBytes so the footprint stays bounded).
 */
std::vector<Addr> stridedPattern(Addr base, std::size_t count,
                                 std::uint64_t strideBytes,
                                 std::uint64_t regionBytes);

/** @p count uniformly random line addresses within a region. */
std::vector<Addr> randomPattern(Addr base, std::size_t count,
                                std::uint64_t regionBytes,
                                std::uint64_t seed);

} // namespace workloads
} // namespace pimmmu

#endif // PIMMMU_WORKLOADS_PATTERNS_HH

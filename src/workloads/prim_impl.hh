/**
 * @file
 * Full functional implementations of the 16 PrIM workloads: host data
 * generation, the SPMD DPU kernel, the DRAM<->PIM transfer plans, and
 * host-side verification. These run end-to-end on the simulated system
 * through either the baseline (dpu_push_xfer) or PIM-MMU transfer path
 * and produce verifiably correct results.
 */

#ifndef PIMMMU_WORKLOADS_PRIM_IMPL_HH
#define PIMMMU_WORKLOADS_PRIM_IMPL_HH

#include <memory>
#include <string>
#include <vector>

#include "core/pim_mmu_op.hh"
#include "sim/system.hh"
#include "workloads/kernels.hh"

namespace pimmmu {
namespace workloads {

/** One direction of host<->PIM data movement for a benchmark phase. */
struct XferPlan
{
    core::XferDirection dir = core::XferDirection::DramToPim;
    std::vector<Addr> hostAddrs; //!< one per DPU
    std::uint64_t bytesPerDpu = 0;
    Addr heapOffset = 0;
};

/** Scale knobs for a benchmark run. */
struct PrimRunConfig
{
    unsigned numDpus = 64;          //!< multiple of 8 (whole banks)
    std::uint64_t elemsPerDpu = 1024;
    std::uint64_t seed = 42;
};

/**
 * A runnable PrIM workload. Lifecycle:
 *   prepare(sys) -> inputTransfers() -> kernel() on all DPUs ->
 *   outputTransfers() -> verify(sys).
 */
class PrimBenchmark
{
  public:
    virtual ~PrimBenchmark() = default;

    virtual const char *name() const = 0;

    /** Allocate and initialize host inputs. Called exactly once. */
    virtual void prepare(sim::System &sys) = 0;

    /** Host->PIM transfer plan(s), in order. */
    virtual std::vector<XferPlan> inputTransfers() const = 0;

    /** The SPMD kernel (receives the DPU and its index in the set). */
    virtual DpuKernel kernel() const = 0;

    /** PIM->host transfer plan(s), in order. */
    virtual std::vector<XferPlan> outputTransfers() const = 0;

    /** Check results against the host reference. */
    virtual bool verify(sim::System &sys) const = 0;

    const PrimRunConfig &config() const { return config_; }

  protected:
    explicit PrimBenchmark(const PrimRunConfig &config)
        : config_(config)
    {
    }

    PrimRunConfig config_;
};

/** All implemented benchmark names (the 16 PrIM workloads). */
const std::vector<std::string> &primBenchmarkNames();

/** Instantiate a benchmark by PrIM name (VA, GEMV, ..., TRNS). */
std::unique_ptr<PrimBenchmark>
makePrimBenchmark(const std::string &name, const PrimRunConfig &config);

/** Outcome of one end-to-end run. */
struct PrimRunResult
{
    Tick inXferPs = 0;
    Tick kernelPs = 0;
    Tick outXferPs = 0;
    bool correct = false;

    Tick totalPs() const { return inXferPs + kernelPs + outXferPs; }
};

/**
 * Execute a benchmark end-to-end on @p sys, using the software path at
 * DesignPoint::Base and the PIM-MMU path otherwise, with the analytic
 * kernel-time model from the matching PrIM descriptor.
 */
PrimRunResult runPrimBenchmark(sim::System &sys, PrimBenchmark &bench);

} // namespace workloads
} // namespace pimmmu

#endif // PIMMMU_WORKLOADS_PRIM_IMPL_HH

#include "workloads/patterns.hh"

#include "common/logging.hh"

namespace pimmmu {
namespace workloads {

std::vector<Addr>
sequentialPattern(Addr base, std::size_t count)
{
    std::vector<Addr> addrs;
    addrs.reserve(count);
    for (std::size_t i = 0; i < count; ++i)
        addrs.push_back(base + Addr{i} * 64);
    return addrs;
}

std::vector<Addr>
stridedPattern(Addr base, std::size_t count, std::uint64_t strideBytes,
               std::uint64_t regionBytes)
{
    PIMMMU_ASSERT(strideBytes % 64 == 0, "stride must be line-aligned");
    PIMMMU_ASSERT(regionBytes >= strideBytes, "region too small");
    std::vector<Addr> addrs;
    addrs.reserve(count);
    Addr offset = 0;
    // Wrap with a 64 B phase shift per pass so repeated passes do not
    // re-touch identical lines.
    Addr phase = 0;
    for (std::size_t i = 0; i < count; ++i) {
        addrs.push_back(base + offset + phase);
        offset += strideBytes;
        if (offset + strideBytes > regionBytes) {
            offset = 0;
            phase = (phase + 64) % strideBytes;
        }
    }
    return addrs;
}

std::vector<Addr>
randomPattern(Addr base, std::size_t count, std::uint64_t regionBytes,
              std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<Addr> addrs;
    addrs.reserve(count);
    const std::uint64_t lines = regionBytes / 64;
    for (std::size_t i = 0; i < count; ++i)
        addrs.push_back(base + rng.below(lines) * 64);
    return addrs;
}

} // namespace workloads
} // namespace pimmmu

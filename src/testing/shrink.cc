#include "testing/shrink.hh"

namespace pimmmu {
namespace testing {

namespace {

class Shrinker
{
  public:
    Shrinker(const TransferPlan &plan, unsigned maxEvaluations)
        : best_(plan), maxEvaluations_(maxEvaluations)
    {
        bestResult_ = runPlan(best_);
        ++evaluations_;
    }

    ShrinkResult
    shrink()
    {
        if (bestResult_.pass())
            return {best_, bestResult_, evaluations_};
        bool changed = true;
        while (changed && evaluations_ < maxEvaluations_) {
            changed = false;
            changed |= dropOps();
            changed |= reduceQueueDepth();
            changed |= reduceBanks();
            changed |= reduceBytes();
            changed |= simplifyKnobs();
        }
        return {best_, bestResult_, evaluations_};
    }

  private:
    /** Adopt @p candidate if it is valid and still fails. */
    bool
    accept(TransferPlan candidate)
    {
        if (evaluations_ >= maxEvaluations_)
            return false;
        if (!validatePlan(candidate).empty())
            return false;
        PropertyResult r = runPlan(candidate);
        ++evaluations_;
        if (r.pass())
            return false;
        best_ = std::move(candidate);
        bestResult_ = std::move(r);
        return true;
    }

    bool
    dropOps()
    {
        bool changed = false;
        for (std::size_t i = 0; i < best_.ops.size();) {
            if (best_.ops.size() == 1)
                break;
            TransferPlan candidate = best_;
            candidate.ops.erase(candidate.ops.begin() +
                                static_cast<std::ptrdiff_t>(i));
            if (accept(std::move(candidate)))
                changed = true; // same index now holds the next op
            else
                ++i;
        }
        return changed;
    }

    bool
    reduceQueueDepth()
    {
        if (best_.queueDepth == 1)
            return false;
        TransferPlan candidate = best_;
        candidate.queueDepth = 1;
        return accept(std::move(candidate));
    }

    bool
    reduceBanks()
    {
        bool changed = false;
        for (std::size_t i = 0; i < best_.ops.size(); ++i) {
            while (best_.ops[i].banks.size() > 1) {
                TransferPlan candidate = best_;
                auto &banks = candidate.ops[i].banks;
                banks.resize((banks.size() + 1) / 2);
                if (!accept(std::move(candidate)))
                    break;
                changed = true;
            }
        }
        return changed;
    }

    bool
    reduceBytes()
    {
        bool changed = false;
        for (std::size_t i = 0; i < best_.ops.size(); ++i) {
            while (best_.ops[i].bytesPerDpu > 64) {
                TransferPlan candidate = best_;
                std::uint64_t &bytes = candidate.ops[i].bytesPerDpu;
                bytes = ((bytes / 2 + 63) / 64) * 64;
                if (!accept(std::move(candidate)))
                    break;
                changed = true;
            }
        }
        return changed;
    }

    bool
    simplifyKnobs()
    {
        bool changed = false;
        for (std::size_t i = 0; i < best_.ops.size(); ++i) {
            if (best_.ops[i].heapOffset != 0) {
                TransferPlan candidate = best_;
                candidate.ops[i].heapOffset = 0;
                changed |= accept(std::move(candidate));
            }
            if (best_.ops[i].strideFactor != 1) {
                TransferPlan candidate = best_;
                candidate.ops[i].strideFactor = 1;
                changed |= accept(std::move(candidate));
            }
        }
        if (best_.useLlc || best_.memContenders > 0) {
            // Drop the cache and its contender traffic together
            // (contenders without the LLC fail validation): a bug
            // that keeps them in the shrunk plan genuinely needs the
            // contention to reproduce.
            TransferPlan candidate = best_;
            candidate.useLlc = false;
            candidate.memContenders = 0;
            changed |= accept(std::move(candidate));
        }
        if (best_.scatterFrames) {
            TransferPlan candidate = best_;
            candidate.scatterFrames = false;
            changed |= accept(std::move(candidate));
        }
        if (best_.fcfs) {
            TransferPlan candidate = best_;
            candidate.fcfs = false;
            changed |= accept(std::move(candidate));
        }
        return changed;
    }

    TransferPlan best_;
    PropertyResult bestResult_;
    unsigned evaluations_ = 0;
    unsigned maxEvaluations_;
};

} // namespace

ShrinkResult
shrinkPlan(const TransferPlan &plan, unsigned maxEvaluations)
{
    Shrinker shrinker(plan, maxEvaluations);
    return shrinker.shrink();
}

} // namespace testing
} // namespace pimmmu

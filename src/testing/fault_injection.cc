#include "testing/fault_injection.hh"

#include <map>

namespace pimmmu {
namespace testing {
namespace fault {

thread_local bool gAnyArmed = false;

namespace {

/** site -> trigger count; presence means armed. Thread-local. */
std::map<std::string, std::uint64_t> &
sites()
{
    static thread_local std::map<std::string, std::uint64_t> s;
    return s;
}

} // namespace

bool
fireSlow(const char *site)
{
    auto it = sites().find(site);
    if (it == sites().end())
        return false;
    ++it->second;
    return true;
}

void
arm(const std::string &site)
{
    sites().emplace(site, 0);
    gAnyArmed = true;
}

void
disarmAll()
{
    sites().clear();
    gAnyArmed = false;
}

std::uint64_t
count(const std::string &site)
{
    auto it = sites().find(site);
    return it == sites().end() ? 0 : it->second;
}

std::vector<std::string>
armedSites()
{
    std::vector<std::string> names;
    names.reserve(sites().size());
    for (const auto &kv : sites())
        names.push_back(kv.first);
    return names;
}

} // namespace fault
} // namespace testing
} // namespace pimmmu

#include "testing/fault_injection.hh"

#include <map>

#include "common/random.hh"

namespace pimmmu {
namespace testing {
namespace fault {

thread_local bool gAnyArmed = false;

namespace {

/** One armed site: trigger count plus an optional rate gate. */
struct SiteState
{
    std::uint64_t count = 0;
    bool rateBased = false;
    double prob = 1.0;
    Rng rng{0};
};

/** site -> state; presence means armed. Thread-local. */
std::map<std::string, SiteState> &
sites()
{
    static thread_local std::map<std::string, SiteState> s;
    return s;
}

} // namespace

bool
fireSlow(const char *site)
{
    auto it = sites().find(site);
    if (it == sites().end())
        return false;
    SiteState &state = it->second;
    if (state.rateBased && state.rng.uniform() >= state.prob)
        return false;
    ++state.count;
    return true;
}

void
arm(const std::string &site)
{
    sites().emplace(site, SiteState{});
    gAnyArmed = true;
}

void
armRate(const std::string &site, double prob, std::uint64_t seed)
{
    SiteState state;
    state.rateBased = true;
    state.prob = prob;
    state.rng = Rng(seed);
    sites()[site] = state;
    gAnyArmed = true;
}

void
disarmAll()
{
    sites().clear();
    gAnyArmed = false;
}

std::uint64_t
count(const std::string &site)
{
    auto it = sites().find(site);
    return it == sites().end() ? 0 : it->second.count;
}

std::vector<std::string>
armedSites()
{
    std::vector<std::string> names;
    names.reserve(sites().size());
    for (const auto &kv : sites())
        names.push_back(kv.first);
    return names;
}

} // namespace fault
} // namespace testing
} // namespace pimmmu

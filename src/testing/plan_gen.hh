/**
 * @file
 * Seed-deterministic random transfer-plan generation for the property
 * harness. A (seed, case) pair fully determines a plan; generating it
 * twice yields bit-identical plans, which is what makes CI failures
 * replayable with `prop_runner --replay <seed>:<case>`.
 */

#ifndef PIMMMU_TESTING_PLAN_GEN_HH
#define PIMMMU_TESTING_PLAN_GEN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/pim_mmu_op.hh"
#include "sim/system.hh"

namespace pimmmu {
namespace testing {

/**
 * One randomized plan step. Most steps are DRAM<->PIM transfers: a set
 * of whole banks (all 8 chips each), a per-DPU size, an MRAM heap
 * offset, and the host-side array spacing; fillWidth picks the element
 * width of the generated host/MRAM payload (1/2/4/8-byte elements).
 * With `launch` set the step is instead a PrIM kernel launch over the
 * same banks: the deterministic byte-transform kernel (see
 * launchKernelByte) runs over each DPU's MRAM window
 * [heapOffset, heapOffset + bytesPerDpu), generating no DRAM traffic.
 */
struct TransferOp
{
    core::XferDirection dir = core::XferDirection::DramToPim;
    bool launch = false;           //!< kernel launch instead of a transfer
    std::vector<unsigned> banks;   //!< touched PIM banks, ascending
    std::uint64_t bytesPerDpu = 64;
    Addr heapOffset = 0;           //!< 8-byte aligned MRAM offset
    unsigned fillWidth = 8;        //!< payload element width in bytes
    unsigned strideFactor = 1;     //!< host arrays bytesPerDpu*factor apart

    std::uint64_t hostStride() const { return bytesPerDpu * strideFactor; }
    std::uint64_t dpuCount() const { return banks.size() * 8; }
    std::uint64_t bytes() const { return dpuCount() * bytesPerDpu; }
};

/** A complete generated test case. */
struct TransferPlan
{
    std::uint64_t seed = 0;
    unsigned caseIdx = 0;

    sim::DesignPoint design = sim::DesignPoint::BaseDHP;
    bool scatterFrames = true;   //!< OS-scattered 2 MiB host frames
    bool fcfs = false;           //!< FCFS instead of FR-FCFS controllers
    unsigned queueDepth = 1;     //!< transfers issued back-to-back
    std::vector<TransferOp> ops;

    /**
     * Run with the LLC enabled. The transfer paths bypass the cache
     * (non-temporal copies / DCE traffic), so this only matters
     * together with memContenders, whose cacheable reads exercise
     * fills and evictions concurrently with the plan; the conservation
     * property then accounts for LLC fill/writeback traffic exactly
     * instead of requiring bare bus counts to match plan bytes.
     */
    bool useLlc = false;

    /** Co-running cacheable memory-contender threads (LLC runs only). */
    unsigned memContenders = 0;

    /** Bytes crossing the buses: transfer steps only (kernel launches
     *  work entirely inside MRAM). */
    std::uint64_t
    totalBytes() const
    {
        std::uint64_t total = 0;
        for (const auto &op : ops) {
            if (!op.launch)
                total += op.bytes();
        }
        return total;
    }

    std::uint64_t
    launchCount() const
    {
        std::uint64_t n = 0;
        for (const auto &op : ops)
            n += op.launch ? 1 : 0;
        return n;
    }

    /** Human-readable dump (the shrunk-reproducer format). */
    std::string str() const;
};

/** Harness geometry: small enough that a case runs in milliseconds. */
mapping::DramGeometry propDramGeometry();
device::PimGeometry propPimGeometry();

/** System configuration a plan runs under. */
sim::SystemConfig planConfig(const TransferPlan &plan);

/** Deterministically generate the (seed, case) plan. */
TransferPlan generatePlan(std::uint64_t seed, unsigned caseIdx);

/**
 * Plan well-formedness (bank ids in range and unique, sizes 64-byte
 * multiples, heap offsets 8-byte aligned and inside MRAM, ...).
 * @return empty string if valid, else the reason.
 */
std::string validatePlan(const TransferPlan &plan);

} // namespace testing
} // namespace pimmmu

#endif // PIMMMU_TESTING_PLAN_GEN_HH

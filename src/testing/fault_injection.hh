/**
 * @file
 * Fault-injection points for negative testing.
 *
 * Production code marks the rare places where a deliberate bug can be
 * switched on (`fault::fire("site.name")`); the property tests arm one
 * site at a time to prove each correctness property actually fails when
 * the corresponding invariant is broken. All sites are disarmed by
 * default and the fast path is a single global bool, so shipping the
 * hooks costs nothing.
 *
 * This library is dependency-free on purpose: any simulator layer can
 * link it without creating a cycle.
 */

#ifndef PIMMMU_TESTING_FAULT_INJECTION_HH
#define PIMMMU_TESTING_FAULT_INJECTION_HH

#include <cstdint>
#include <string>
#include <vector>

namespace pimmmu {
namespace testing {
namespace fault {

/**
 * True iff at least one site is armed on this thread (fast-path gate).
 * Thread-local, like the whole registry: a fault armed by a test fires
 * only on the arming thread, so concurrent sweep workers (and their
 * Systems) are isolated from each other's injected faults.
 */
extern thread_local bool gAnyArmed;

/** Slow path of fire(): name lookup + count. */
bool fireSlow(const char *site);

/**
 * Should the fault at @p site trigger now? Counts the trigger when it
 * does. Near-zero cost while nothing is armed.
 */
inline bool
fire(const char *site)
{
    return gAnyArmed && fireSlow(site);
}

/** Arm a site; it fires on every fire() call until disarmed. */
void arm(const std::string &site);

/**
 * Arm a site probabilistically: each fire() call triggers with
 * probability @p prob, drawn from a dedicated xoshiro256** stream
 * seeded with @p seed. Deterministic: the same seed and the same
 * sequence of fire() calls trigger at exactly the same points, which
 * is what makes fault-rate campaigns and their failures replayable.
 * Re-arming an already-armed site replaces its rate, seed, and count.
 * Thread-local like arm(): concurrent sweep workers are isolated.
 */
void armRate(const std::string &site, double prob, std::uint64_t seed);

/** Disarm everything and reset trigger counts. */
void disarmAll();

/** How many times an armed site has fired. */
std::uint64_t count(const std::string &site);

/** Names of the currently armed sites. */
std::vector<std::string> armedSites();

/** RAII guard: arms a site for one test scope. */
class Armed
{
  public:
    explicit Armed(const std::string &site) { arm(site); }
    ~Armed() { disarmAll(); }
    Armed(const Armed &) = delete;
    Armed &operator=(const Armed &) = delete;
};

} // namespace fault
} // namespace testing
} // namespace pimmmu

#endif // PIMMMU_TESTING_FAULT_INJECTION_HH

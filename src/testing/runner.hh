/**
 * @file
 * Corpus driver behind the prop_runner CLI: run (seed, case) ranges,
 * shrink failures, emit replay commands and reproducer artifacts.
 */

#ifndef PIMMMU_TESTING_RUNNER_HH
#define PIMMMU_TESTING_RUNNER_HH

#include <iosfwd>
#include <vector>

#include "testing/shrink.hh"

namespace pimmmu {
namespace testing {

struct RunnerOptions
{
    std::vector<std::uint64_t> seeds; //!< defaults to {1}
    unsigned cases = 64;              //!< cases per seed
    double timeBudgetS = 0.0;         //!< stop after this long (0 = off)
    std::string outDir;               //!< reproducer artifacts ("" = off)
    bool verbose = false;
};

struct CaseFailure
{
    std::uint64_t seed = 0;
    unsigned caseIdx = 0;
    PropertyResult original;
    ShrinkResult shrunk;
};

struct CorpusResult
{
    std::uint64_t casesRun = 0;
    bool budgetExhausted = false;
    std::vector<CaseFailure> failures;

    bool pass() const { return failures.empty(); }
};

/** Run one case, shrinking on failure. @return pass/fail + details. */
CaseFailure runCase(std::uint64_t seed, unsigned caseIdx,
                    bool &passed);

/** Run the corpus, logging progress and failures to @p log. */
CorpusResult runCorpus(const RunnerOptions &options, std::ostream &log);

/** Full CLI entry point (prop_runner's main). */
int runnerMain(int argc, char **argv);

} // namespace testing
} // namespace pimmmu

#endif // PIMMMU_TESTING_RUNNER_HH

#include "testing/plan_gen.hh"

#include <algorithm>
#include <sstream>

#include "common/random.hh"

namespace pimmmu {
namespace testing {

mapping::DramGeometry
propDramGeometry()
{
    mapping::DramGeometry g;
    g.channels = 2;
    g.ranksPerChannel = 1;
    g.bankGroups = 2;
    g.banksPerGroup = 2;
    g.rows = 1024; // 16 MiB: several 2 MiB frames for the scatter knob
    g.columns = 32;
    g.lineBytes = 64;
    return g;
}

device::PimGeometry
propPimGeometry()
{
    device::PimGeometry g;
    g.banks.channels = 2;
    g.banks.ranksPerChannel = 1;
    g.banks.bankGroups = 2;
    g.banks.banksPerGroup = 2;
    g.banks.rows = 64; // 8 banks, 64 DPUs, 16 KiB MRAM per DPU
    g.banks.columns = 32;
    g.banks.lineBytes = 64;
    g.chipsPerRank = 8;
    return g;
}

sim::SystemConfig
planConfig(const TransferPlan &plan)
{
    sim::SystemConfig cfg;
    cfg.dramGeom = propDramGeometry();
    cfg.pimGeom = propPimGeometry();
    cfg.design = plan.design;
    // LLC off by default: the harness checks exact request
    // conservation. Cache-enabled plans keep it exact too, by
    // accounting for LLC fills and writebacks explicitly (see
    // checkConservation in properties.cc). The cache is shrunk well
    // below the contenders' footprint so fills and evictions actually
    // happen at harness scale.
    cfg.useLlc = plan.useLlc;
    if (plan.useLlc)
        cfg.llc.sizeBytes = 256 * kKiB;
    cfg.scatterHostFrames = plan.scatterFrames;
    cfg.mc.policy =
        plan.fcfs ? dram::SchedPolicy::Fcfs : dram::SchedPolicy::FrFcfs;
    cfg.dce.usePimMs = plan.design == sim::DesignPoint::BaseDHP;
    return cfg;
}

TransferPlan
generatePlan(std::uint64_t seed, unsigned caseIdx)
{
    // Derive an independent stream per (seed, case) so cases never share
    // a prefix of random draws.
    std::uint64_t sm = seed;
    std::uint64_t mixed = splitMix64(sm);
    sm = mixed ^ (std::uint64_t{caseIdx} * 0x9e3779b97f4a7c15ull);
    Rng rng(splitMix64(sm));

    TransferPlan plan;
    plan.seed = seed;
    plan.caseIdx = caseIdx;

    // Design mix: every point appears, full PIM-MMU most often.
    switch (rng.below(8)) {
      case 0:
        plan.design = sim::DesignPoint::Base;
        break;
      case 1:
      case 2:
        plan.design = sim::DesignPoint::BaseD;
        break;
      case 3:
      case 4:
        plan.design = sim::DesignPoint::BaseDH;
        break;
      default:
        plan.design = sim::DesignPoint::BaseDHP;
        break;
    }
    plan.scatterFrames = rng.below(2) == 0;
    plan.fcfs = rng.below(4) == 0;
    // Descriptor-ring depth > 1 only exists on the DCE path; the
    // software path executes strictly synchronously.
    plan.queueDepth =
        plan.design == sim::DesignPoint::Base
            ? 1
            : 1 + static_cast<unsigned>(rng.below(4));

    const device::PimGeometry pimGeom = propPimGeometry();
    const unsigned numBanks = pimGeom.numBanks();
    const unsigned numOps = 1 + static_cast<unsigned>(rng.below(5));
    for (unsigned i = 0; i < numOps; ++i) {
        TransferOp op;
        op.dir = rng.below(3) == 0 ? core::XferDirection::PimToDram
                                   : core::XferDirection::DramToPim;

        // Sample a non-empty bank subset without replacement.
        std::vector<unsigned> pool(numBanks);
        for (unsigned b = 0; b < numBanks; ++b)
            pool[b] = b;
        const unsigned count =
            1 + static_cast<unsigned>(rng.below(numBanks));
        for (unsigned k = 0; k < count; ++k) {
            const std::size_t pick =
                k + static_cast<std::size_t>(rng.below(pool.size() - k));
            std::swap(pool[k], pool[pick]);
        }
        op.banks.assign(pool.begin(), pool.begin() + count);
        std::sort(op.banks.begin(), op.banks.end());

        op.bytesPerDpu = 64 * (1 + rng.below(16)); // 64 B .. 1 KiB
        // Mostly line-aligned heap offsets, sometimes odd 8-byte ones.
        op.heapOffset = rng.below(4) == 0 ? 8 * rng.below(512)
                                          : 64 * rng.below(64);
        op.fillWidth = 1u << rng.below(4);
        op.strideFactor = 1 + static_cast<unsigned>(rng.below(3));
        // A quarter of the steps exercise the kernel-launch path
        // instead of the transfer path.
        op.launch = rng.below(4) == 0;
        plan.ops.push_back(std::move(op));
    }
    // Drawn after everything above so the pinned CI corpus keeps its
    // exact per-(seed, case) field values: appending draws at the end
    // of the stream never perturbs earlier ones.
    plan.useLlc = rng.below(4) == 0;
    if (plan.useLlc)
        plan.memContenders = 1 + static_cast<unsigned>(rng.below(2));
    return plan;
}

std::string
validatePlan(const TransferPlan &plan)
{
    const device::PimGeometry pimGeom = propPimGeometry();
    std::ostringstream why;
    if (plan.queueDepth < 1) {
        why << "queueDepth must be >= 1";
        return why.str();
    }
    if (plan.design == sim::DesignPoint::Base && plan.queueDepth != 1) {
        why << "software path has no descriptor ring";
        return why.str();
    }
    if (plan.ops.empty()) {
        why << "plan has no ops";
        return why.str();
    }
    for (std::size_t i = 0; i < plan.ops.size(); ++i) {
        const TransferOp &op = plan.ops[i];
        if (op.banks.empty()) {
            why << "op " << i << ": no banks";
            return why.str();
        }
        for (std::size_t k = 0; k < op.banks.size(); ++k) {
            if (op.banks[k] >= pimGeom.numBanks()) {
                why << "op " << i << ": bank " << op.banks[k]
                    << " out of range";
                return why.str();
            }
            if (k > 0 && op.banks[k] <= op.banks[k - 1]) {
                why << "op " << i << ": banks not strictly ascending";
                return why.str();
            }
        }
        if (op.bytesPerDpu == 0 || op.bytesPerDpu % 64 != 0) {
            why << "op " << i << ": bytesPerDpu not a 64-byte multiple";
            return why.str();
        }
        if (op.heapOffset % 8 != 0) {
            why << "op " << i << ": heapOffset not 8-byte aligned";
            return why.str();
        }
        if (op.heapOffset + op.bytesPerDpu >
            pimGeom.mramBytesPerDpu()) {
            why << "op " << i << ": transfer exceeds MRAM";
            return why.str();
        }
        if (op.fillWidth != 1 && op.fillWidth != 2 &&
            op.fillWidth != 4 && op.fillWidth != 8) {
            why << "op " << i << ": bad fillWidth";
            return why.str();
        }
        if (op.strideFactor < 1) {
            why << "op " << i << ": bad strideFactor";
            return why.str();
        }
        if (!op.launch && op.dir == core::XferDirection::DramToDram) {
            why << "op " << i << ": DramToDram is not a PIM transfer";
            return why.str();
        }
    }
    if (plan.memContenders > 0 && !plan.useLlc) {
        why << "memory contenders require the LLC (they are the "
               "cacheable-traffic source)";
        return why.str();
    }
    if (plan.memContenders > 4) {
        why << "too many memory contenders";
        return why.str();
    }
    return std::string{};
}

std::string
TransferPlan::str() const
{
    std::ostringstream os;
    os << "plan seed=" << seed << " case=" << caseIdx
       << " design=" << sim::designPointName(design)
       << " scatter=" << (scatterFrames ? 1 : 0)
       << " fcfs=" << (fcfs ? 1 : 0) << " queueDepth=" << queueDepth
       << " llc=" << (useLlc ? 1 : 0)
       << " contenders=" << memContenders << "\n";
    for (std::size_t i = 0; i < ops.size(); ++i) {
        const TransferOp &op = ops[i];
        os << "  op[" << i << "] "
           << (op.launch ? "LAUNCH"
               : op.dir == core::XferDirection::DramToPim ? "D->P"
                                                          : "P->D")
           << " banks={";
        for (std::size_t k = 0; k < op.banks.size(); ++k)
            os << (k ? "," : "") << op.banks[k];
        os << "} bytesPerDpu=" << op.bytesPerDpu
           << " heap=" << op.heapOffset << " fillWidth=" << op.fillWidth
           << " stride=x" << op.strideFactor << "\n";
    }
    return os.str();
}

} // namespace testing
} // namespace pimmmu

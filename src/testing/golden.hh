/**
 * @file
 * Independent golden model for DRAM<->PIM transfers.
 *
 * The simulator moves data through bank grouping, 8x8 wire transpose,
 * and the DCE/software timing planes; the golden model is a plain
 * per-DPU byte copy over sparse shadow copies of host memory and MRAM.
 * Because the two implementations share no code, a byte-exact match is
 * strong evidence the whole pipeline is data-preserving.
 */

#ifndef PIMMMU_TESTING_GOLDEN_HH
#define PIMMMU_TESTING_GOLDEN_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/types.hh"

namespace pimmmu {
namespace sim {
class System;
}

namespace testing {

/**
 * The deterministic byte transform applied by generated kernel-launch
 * steps: each MRAM byte at window offset @p i maps through this. The
 * simulator's launched kernel and the golden mirror share this one
 * definition, so a byte-exact match still means the launch path (MRAM
 * access, masking, scheduling) preserved the data.
 */
inline std::uint8_t
launchKernelByte(std::uint8_t v, std::uint64_t i)
{
    return static_cast<std::uint8_t>((v ^ 0x5a) + (i & 0xff));
}

class GoldenModel
{
  public:
    /** Mirror a host-buffer initialization. */
    void hostWrite(Addr addr, const std::uint8_t *data, std::size_t len);

    /** Mirror an MRAM seed write. */
    void mramWrite(unsigned dpuId, std::uint64_t offset,
                   const std::uint8_t *data, std::size_t len);

    /**
     * Apply one transfer's semantics: per listed DPU, copy
     * @p bytesPerDpu bytes between its host array and its MRAM heap
     * slice. Unwritten locations read as zero, matching the simulator's
     * sparse backing store and zero-initialized MRAM.
     */
    void apply(bool toPim, const std::vector<unsigned> &dpuIds,
               const std::vector<Addr> &hostAddrs,
               std::uint64_t bytesPerDpu, Addr heapOffset);

    /**
     * Mirror one kernel launch: run launchKernelByte over each listed
     * DPU's MRAM window [heapOffset, heapOffset + bytesPerDpu).
     * Unwritten locations read as zero, matching zero-initialized MRAM.
     */
    void applyKernel(const std::vector<unsigned> &dpuIds,
                     std::uint64_t bytesPerDpu, Addr heapOffset);

    /**
     * Compare every shadowed byte against the simulated system's
     * backing store and DPU MRAMs. @return up to @p maxDiffs mismatch
     * descriptions (empty = byte-exact).
     */
    std::vector<std::string> compare(sim::System &sys,
                                     std::size_t maxDiffs = 8) const;

    std::size_t hostBytesTracked() const { return host_.size(); }

  private:
    std::uint8_t hostByte(Addr addr) const;
    std::uint8_t mramByte(unsigned dpuId, std::uint64_t offset) const;

    std::map<Addr, std::uint8_t> host_;
    std::map<unsigned, std::map<std::uint64_t, std::uint8_t>> mram_;
};

} // namespace testing
} // namespace pimmmu

#endif // PIMMMU_TESTING_GOLDEN_HH

#include "testing/golden.hh"

#include <sstream>

#include "sim/system.hh"

namespace pimmmu {
namespace testing {

void
GoldenModel::hostWrite(Addr addr, const std::uint8_t *data,
                       std::size_t len)
{
    for (std::size_t i = 0; i < len; ++i)
        host_[addr + i] = data[i];
}

void
GoldenModel::mramWrite(unsigned dpuId, std::uint64_t offset,
                       const std::uint8_t *data, std::size_t len)
{
    auto &mram = mram_[dpuId];
    for (std::size_t i = 0; i < len; ++i)
        mram[offset + i] = data[i];
}

std::uint8_t
GoldenModel::hostByte(Addr addr) const
{
    auto it = host_.find(addr);
    return it == host_.end() ? 0 : it->second;
}

std::uint8_t
GoldenModel::mramByte(unsigned dpuId, std::uint64_t offset) const
{
    auto dpu = mram_.find(dpuId);
    if (dpu == mram_.end())
        return 0;
    auto it = dpu->second.find(offset);
    return it == dpu->second.end() ? 0 : it->second;
}

void
GoldenModel::apply(bool toPim, const std::vector<unsigned> &dpuIds,
                   const std::vector<Addr> &hostAddrs,
                   std::uint64_t bytesPerDpu, Addr heapOffset)
{
    for (std::size_t i = 0; i < dpuIds.size(); ++i) {
        const unsigned dpu = dpuIds[i];
        const Addr host = hostAddrs[i];
        if (toPim) {
            auto &mram = mram_[dpu];
            for (std::uint64_t b = 0; b < bytesPerDpu; ++b)
                mram[heapOffset + b] = hostByte(host + b);
        } else {
            for (std::uint64_t b = 0; b < bytesPerDpu; ++b)
                host_[host + b] = mramByte(dpu, heapOffset + b);
        }
    }
}

void
GoldenModel::applyKernel(const std::vector<unsigned> &dpuIds,
                         std::uint64_t bytesPerDpu, Addr heapOffset)
{
    for (const unsigned dpu : dpuIds) {
        auto &mram = mram_[dpu];
        for (std::uint64_t b = 0; b < bytesPerDpu; ++b) {
            mram[heapOffset + b] =
                launchKernelByte(mramByte(dpu, heapOffset + b), b);
        }
    }
}

std::vector<std::string>
GoldenModel::compare(sim::System &sys, std::size_t maxDiffs) const
{
    std::vector<std::string> diffs;
    for (const auto &kv : host_) {
        if (diffs.size() >= maxDiffs)
            return diffs;
        std::uint8_t actual = 0;
        sys.mem().store().read(kv.first, &actual, 1);
        if (actual != kv.second) {
            std::ostringstream os;
            os << "host[0x" << std::hex << kv.first
               << "]: golden=" << std::dec
               << static_cast<unsigned>(kv.second)
               << " sim=" << static_cast<unsigned>(actual);
            diffs.push_back(os.str());
        }
    }
    for (const auto &dpu : mram_) {
        for (const auto &kv : dpu.second) {
            if (diffs.size() >= maxDiffs)
                return diffs;
            std::uint8_t actual = 0;
            sys.pim().dpu(dpu.first).mramRead(kv.first, &actual, 1);
            if (actual != kv.second) {
                std::ostringstream os;
                os << "mram[dpu " << dpu.first << "][0x" << std::hex
                   << kv.first << "]: golden=" << std::dec
                   << static_cast<unsigned>(kv.second)
                   << " sim=" << static_cast<unsigned>(actual);
                diffs.push_back(os.str());
            }
        }
    }
    return diffs;
}

} // namespace testing
} // namespace pimmmu

#include "testing/runner.hh"

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>

namespace pimmmu {
namespace testing {

namespace {

std::string
replayCommand(std::uint64_t seed, unsigned caseIdx)
{
    std::ostringstream os;
    os << "prop_runner --replay " << seed << ":" << caseIdx;
    return os.str();
}

void
writeArtifact(const std::string &outDir, const CaseFailure &failure)
{
    std::error_code ec;
    std::filesystem::create_directories(outDir, ec);
    std::ostringstream name;
    name << outDir << "/fail_seed" << failure.seed << "_case"
         << failure.caseIdx << ".txt";
    std::ofstream out(name.str());
    if (!out)
        return;
    out << "replay: " << replayCommand(failure.seed, failure.caseIdx)
        << "\n\noriginal plan:\n"
        << generatePlan(failure.seed, failure.caseIdx).str()
        << "\noriginal result: " << failure.original.str()
        << "\nshrunk reproducer (" << failure.shrunk.evaluations
        << " evaluations):\n"
        << failure.shrunk.plan.str()
        << "\nshrunk result: " << failure.shrunk.result.str();
}

void
logFailure(std::ostream &log, const CaseFailure &failure)
{
    log << "FAIL seed=" << failure.seed << " case=" << failure.caseIdx
        << " property=" << failure.original.firstProperty() << "\n"
        << "  replay: "
        << replayCommand(failure.seed, failure.caseIdx) << "\n"
        << "  shrunk reproducer:\n";
    std::istringstream planLines(failure.shrunk.plan.str());
    std::string line;
    while (std::getline(planLines, line))
        log << "    " << line << "\n";
    for (const PropertyViolation &v : failure.shrunk.result.violations)
        log << "    [" << v.property << "] " << v.detail << "\n";
    log.flush();
}

} // namespace

CaseFailure
runCase(std::uint64_t seed, unsigned caseIdx, bool &passed)
{
    CaseFailure failure;
    failure.seed = seed;
    failure.caseIdx = caseIdx;

    const TransferPlan plan = generatePlan(seed, caseIdx);
    failure.original = runPlan(plan);
    passed = failure.original.pass();
    if (!passed)
        failure.shrunk = shrinkPlan(plan);
    return failure;
}

CorpusResult
runCorpus(const RunnerOptions &options, std::ostream &log)
{
    const auto start = std::chrono::steady_clock::now();
    auto budgetLeft = [&] {
        if (options.timeBudgetS <= 0.0)
            return true;
        const std::chrono::duration<double> elapsed =
            std::chrono::steady_clock::now() - start;
        return elapsed.count() < options.timeBudgetS;
    };

    std::vector<std::uint64_t> seeds = options.seeds;
    if (seeds.empty())
        seeds.push_back(1);

    CorpusResult result;
    for (std::uint64_t seed : seeds) {
        for (unsigned c = 0; c < options.cases; ++c) {
            if (!budgetLeft()) {
                result.budgetExhausted = true;
                log << "time budget reached after " << result.casesRun
                    << " cases\n";
                return result;
            }
            bool passed = false;
            CaseFailure outcome = runCase(seed, c, passed);
            ++result.casesRun;
            if (options.verbose)
                log << (passed ? "pass" : "FAIL") << " seed=" << seed
                    << " case=" << c << "\n";
            if (!passed) {
                logFailure(log, outcome);
                if (!options.outDir.empty())
                    writeArtifact(options.outDir, outcome);
                result.failures.push_back(std::move(outcome));
            }
        }
    }
    return result;
}

int
runnerMain(int argc, char **argv)
{
    RunnerOptions options;
    bool replay = false;
    std::uint64_t replaySeed = 0;
    unsigned replayCase = 0;

    auto needValue = [&](int i) {
        if (i + 1 >= argc) {
            std::cerr << argv[0] << ": " << argv[i]
                      << " needs a value\n";
            std::exit(2);
        }
        return argv[i + 1];
    };

    for (int i = 1; i < argc; ++i) {
        const char *arg = argv[i];
        if (std::strcmp(arg, "--seed") == 0) {
            options.seeds.push_back(
                std::strtoull(needValue(i), nullptr, 0));
            ++i;
        } else if (std::strcmp(arg, "--cases") == 0) {
            options.cases = static_cast<unsigned>(
                std::strtoul(needValue(i), nullptr, 0));
            ++i;
        } else if (std::strcmp(arg, "--time-budget-s") == 0) {
            options.timeBudgetS = std::strtod(needValue(i), nullptr);
            ++i;
        } else if (std::strcmp(arg, "--out-dir") == 0) {
            options.outDir = needValue(i);
            ++i;
        } else if (std::strcmp(arg, "--replay") == 0) {
            const std::string spec = needValue(i);
            ++i;
            const std::size_t colon = spec.find(':');
            if (colon == std::string::npos) {
                std::cerr << argv[0]
                          << ": --replay wants <seed>:<case>\n";
                return 2;
            }
            replay = true;
            replaySeed =
                std::strtoull(spec.substr(0, colon).c_str(), nullptr, 0);
            replayCase = static_cast<unsigned>(std::strtoul(
                spec.substr(colon + 1).c_str(), nullptr, 0));
        } else if (std::strcmp(arg, "--verbose") == 0 ||
                   std::strcmp(arg, "-v") == 0) {
            options.verbose = true;
        } else if (std::strcmp(arg, "--help") == 0 ||
                   std::strcmp(arg, "-h") == 0) {
            std::cout
                << "usage: " << argv[0]
                << " [--seed N]... [--cases M] [--time-budget-s S]\n"
                << "       [--out-dir DIR] [--replay SEED:CASE] "
                   "[--verbose]\n";
            return 0;
        } else {
            std::cerr << argv[0] << ": unknown option " << arg << "\n";
            return 2;
        }
    }

    if (replay) {
        std::cout << "replaying seed=" << replaySeed
                  << " case=" << replayCase << "\n";
        const TransferPlan plan = generatePlan(replaySeed, replayCase);
        std::cout << plan.str();
        bool passed = false;
        CaseFailure outcome = runCase(replaySeed, replayCase, passed);
        if (passed) {
            std::cout << "PASS\n";
            return 0;
        }
        logFailure(std::cout, outcome);
        if (!options.outDir.empty())
            writeArtifact(options.outDir, outcome);
        return 1;
    }

    CorpusResult result = runCorpus(options, std::cout);
    std::cout << result.casesRun << " cases, "
              << result.failures.size() << " failure(s)"
              << (result.budgetExhausted ? " (budget reached)" : "")
              << "\n";
    return result.pass() ? 0 : 1;
}

} // namespace testing
} // namespace pimmmu

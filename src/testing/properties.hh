/**
 * @file
 * Property evaluation: run a generated TransferPlan on a full System
 * (DCE, PIM-MS, HetMap, transpose, controllers with protocol checkers
 * attached) and check three end-to-end properties against independent
 * oracles:
 *
 *  1. data         - every DRAM<->PIM copy is byte-exact vs the golden
 *                    model's plain per-DPU copy
 *  2. protocol     - no DDR4 timing/state violation on any channel
 *  3. conservation - telemetry counters balance: bytes moved == bytes
 *                    requested, per-request histograms total to the
 *                    request counts, engine line counters match plan
 *                    sizes
 */

#ifndef PIMMMU_TESTING_PROPERTIES_HH
#define PIMMMU_TESTING_PROPERTIES_HH

#include <string>
#include <vector>

#include "testing/plan_gen.hh"

namespace pimmmu {
namespace testing {

struct PropertyViolation
{
    std::string property; //!< "data", "protocol", "conservation", ...
    std::string detail;
};

struct PropertyResult
{
    std::vector<PropertyViolation> violations;

    bool pass() const { return violations.empty(); }

    /** First failing property name ("" when passing). */
    std::string
    firstProperty() const
    {
        return violations.empty() ? std::string{}
                                  : violations.front().property;
    }

    std::string str() const;
};

/** Execute @p plan on a fresh System and evaluate all properties. */
PropertyResult runPlan(const TransferPlan &plan);

} // namespace testing
} // namespace pimmmu

#endif // PIMMMU_TESTING_PROPERTIES_HH

#include "testing/properties.hh"

#include <memory>
#include <sstream>

#include "common/random.hh"
#include "dram/protocol_checker.hh"
#include "testing/golden.hh"

namespace pimmmu {
namespace testing {

namespace {

/** Working-set size of one harness memory contender: larger than the
 *  LLC (so it keeps missing and evicting) yet a small slice of the
 *  harness's 16 MiB DRAM space. */
constexpr std::uint64_t kContenderFootprint = 1 * kMiB;

/** Concrete form of one op: DPU ids + host arrays, ready to execute. */
struct PreparedOp
{
    bool toPim = true;
    bool launch = false;
    std::vector<unsigned> dpuIds;
    std::vector<Addr> hostAddrs;
    std::uint64_t bytesPerDpu = 0;
    Addr heapOffset = 0;
};

/** Deterministic payload: fillWidth-sized elements from one stream. */
std::vector<std::uint8_t>
makePayload(Rng &rng, std::uint64_t bytes, unsigned fillWidth)
{
    std::vector<std::uint8_t> data(bytes);
    for (std::uint64_t i = 0; i < bytes; i += fillWidth) {
        const std::uint64_t elem = rng();
        for (unsigned b = 0; b < fillWidth && i + b < bytes; ++b)
            data[i + b] =
                static_cast<std::uint8_t>(elem >> (8 * b));
    }
    return data;
}

class PlanRunner
{
  public:
    explicit PlanRunner(const TransferPlan &plan)
        : plan_(plan), cfg_(planConfig(plan)), sys_(cfg_)
    {
        attachCheckers();
        if (plan_.memContenders > 0) {
            // Cacheable pointer-chase traffic through the LLC, with a
            // footprint small enough for the harness's 16 MiB DRAM but
            // large enough to keep missing and evicting.
            sys_.addMemoryContenders(plan_.memContenders,
                                     cpu::MemIntensity::Medium,
                                     kContenderFootprint);
        }
    }

    PropertyResult
    run()
    {
        prepare();
        execute();
        if (!result_.violations.empty())
            return result_; // liveness failure: don't pile on
        checkData();
        checkProtocol();
        checkConservation();
        return result_;
    }

  private:
    void
    fail(const char *property, const std::string &detail)
    {
        result_.violations.push_back(PropertyViolation{property, detail});
    }

    void
    attachCheckers()
    {
        const auto &dramTiming = dram::timingPreset(cfg_.dramSpeed);
        const auto &pimTiming = dram::timingPreset(cfg_.pimSpeed);
        auto &mem = sys_.mem();
        for (unsigned ch = 0; ch < mem.dramChannels(); ++ch) {
            checkers_.push_back(std::make_unique<dram::ProtocolChecker>(
                dramTiming, cfg_.dramGeom));
            checkerNames_.push_back("dram.ch" + std::to_string(ch));
            dram::ProtocolChecker *checker = checkers_.back().get();
            mem.dramController(ch).onCommand(
                [checker](const dram::CommandRecord &r) {
                    checker->observe(r);
                });
        }
        for (unsigned ch = 0; ch < mem.pimChannels(); ++ch) {
            checkers_.push_back(std::make_unique<dram::ProtocolChecker>(
                pimTiming, cfg_.pimGeom.banks));
            checkerNames_.push_back("pim.ch" + std::to_string(ch));
            dram::ProtocolChecker *checker = checkers_.back().get();
            mem.pimController(ch).onCommand(
                [checker](const dram::CommandRecord &r) {
                    checker->observe(r);
                });
        }
    }

    /** Allocate host arrays and seed both planes with the payloads. */
    void
    prepare()
    {
        std::uint64_t sm =
            plan_.seed ^ 0xf111f111f111f111ull;
        sm = splitMix64(sm) + plan_.caseIdx;
        Rng fill(splitMix64(sm));

        for (const TransferOp &op : plan_.ops) {
            PreparedOp prep;
            prep.toPim = op.dir == core::XferDirection::DramToPim;
            prep.launch = op.launch;
            prep.bytesPerDpu = op.bytesPerDpu;
            prep.heapOffset = op.heapOffset;
            if (op.launch) {
                // Kernel launch: no host arrays; seed each DPU's MRAM
                // window so the kernel transforms known data.
                for (unsigned bank : op.banks) {
                    for (unsigned chip = 0; chip < 8; ++chip) {
                        prep.dpuIds.push_back(
                            cfg_.pimGeom.dpuId(bank, chip));
                    }
                }
                for (unsigned dpu : prep.dpuIds) {
                    const auto data =
                        makePayload(fill, op.bytesPerDpu, op.fillWidth);
                    sys_.pim().dpu(dpu).mramWrite(
                        op.heapOffset, data.data(), data.size());
                    golden_.mramWrite(dpu, op.heapOffset, data.data(),
                                      data.size());
                }
                prepared_.push_back(std::move(prep));
                continue;
            }
            const Addr base = sys_.allocDram(
                op.dpuCount() * op.hostStride(), 64);
            for (unsigned bank : op.banks) {
                for (unsigned chip = 0; chip < 8; ++chip) {
                    const std::size_t i = prep.dpuIds.size();
                    prep.dpuIds.push_back(
                        cfg_.pimGeom.dpuId(bank, chip));
                    prep.hostAddrs.push_back(base +
                                             i * op.hostStride());
                }
            }
            if (prep.toPim) {
                // Payload starts in host memory.
                for (Addr addr : prep.hostAddrs) {
                    const auto data =
                        makePayload(fill, op.bytesPerDpu, op.fillWidth);
                    sys_.mem().store().write(addr, data.data(),
                                             data.size());
                    golden_.hostWrite(addr, data.data(), data.size());
                }
            } else {
                // Payload starts in MRAM.
                for (unsigned dpu : prep.dpuIds) {
                    const auto data =
                        makePayload(fill, op.bytesPerDpu, op.fillWidth);
                    sys_.pim().dpu(dpu).mramWrite(
                        op.heapOffset, data.data(), data.size());
                    golden_.mramWrite(dpu, op.heapOffset, data.data(),
                                      data.size());
                }
            }
            prepared_.push_back(std::move(prep));
        }
    }

    void
    execute()
    {
        // Waves of queueDepth transfers issued back-to-back exercise
        // the DCE descriptor ring; the golden model applies ops in call
        // order, matching the simulator's call-time functional copies.
        std::size_t next = 0;
        while (next < prepared_.size()) {
            const std::size_t end = std::min(
                next + plan_.queueDepth, prepared_.size());
            unsigned done = 0;
            for (std::size_t i = next; i < end; ++i) {
                const PreparedOp &prep = prepared_[i];
                if (prep.launch) {
                    // Kernel launches run functionally at call time
                    // (the modeled exec latency generates no DRAM
                    // traffic), so the step completes synchronously.
                    const Addr off = prep.heapOffset;
                    const std::uint64_t bytes = prep.bytesPerDpu;
                    sys_.upmem().launch(
                        prep.dpuIds,
                        [off, bytes](device::Dpu &dpu, unsigned) {
                            std::vector<std::uint8_t> buf(bytes);
                            dpu.mramRead(off, buf.data(), bytes);
                            for (std::uint64_t b = 0; b < bytes; ++b)
                                buf[b] = launchKernelByte(buf[b], b);
                            dpu.mramWrite(off, buf.data(), bytes);
                        },
                        device::KernelModel{}, bytes);
                    golden_.applyKernel(prep.dpuIds, bytes, off);
                    ++done;
                    continue;
                }
                if (cfg_.useDce()) {
                    core::PimMmuOp op;
                    op.type = prep.toPim
                                  ? core::XferDirection::DramToPim
                                  : core::XferDirection::PimToDram;
                    op.sizePerPim = prep.bytesPerDpu;
                    op.dramAddrArr = prep.hostAddrs;
                    op.pimIdArr = prep.dpuIds;
                    op.pimBaseHeapPtr = prep.heapOffset;
                    sys_.pimMmu().transfer(op, [&done] { ++done; });
                } else {
                    sys_.upmem().pushXfer(
                        prep.toPim ? upmem::XferKind::ToDpu
                                   : upmem::XferKind::FromDpu,
                        prep.dpuIds, prep.hostAddrs, prep.bytesPerDpu,
                        prep.heapOffset, [&done] { ++done; });
                }
                golden_.apply(prep.toPim, prep.dpuIds, prep.hostAddrs,
                              prep.bytesPerDpu, prep.heapOffset);
            }
            const unsigned expect = static_cast<unsigned>(end - next);
            const Tick limit = sys_.eq().now() + Tick{100} * kPsPerMs;
            if (!sys_.runUntil([&] { return done == expect; }, limit)) {
                std::ostringstream os;
                os << "wave [" << next << ", " << end
                   << ") did not complete within 100 ms simulated";
                // Queue-state diagnostics: a wedged wave is almost
                // always stuck traffic, so show where the requests
                // are parked. (This is how the contender coverage
                // exposed the write-drain starvation livelock.)
                os << "\n    done=" << done << " expect=" << expect;
                auto &mem = sys_.mem();
                for (unsigned ch = 0; ch < mem.dramChannels(); ++ch)
                    os << "\n    dram.ch" << ch << " pending="
                       << mem.dramController(ch).pending();
                for (unsigned ch = 0; ch < mem.pimChannels(); ++ch)
                    os << "\n    pim.ch" << ch << " pending="
                       << mem.pimController(ch).pending();
                if (sys_.llc()) {
                    const stats::Group &llc = sys_.llc()->stats();
                    for (const char *c :
                         {"read_hits", "read_misses", "write_hits",
                          "write_misses", "mshr_merges",
                          "mshr_full_rejects", "queue_full_rejects",
                          "writebacks", "writebacks_dropped"})
                        os << "\n    llc." << c << "="
                           << llc.counterValue(c);
                }
                fail("liveness", os.str());
                return;
            }
            next = end;
        }

        // Quiesce before the audit. The contenders free-run, so at
        // wave completion their latest LLC fills and writebacks can
        // still be in flight: counted at the cache but not yet
        // retired at a controller. Stop the CPU threads and drain
        // the memory system so the conservation check compares fully
        // settled counters on both sides.
        if (plan_.memContenders > 0) {
            sys_.cpu().shutdown();
            auto settled = [&] {
                auto &mem = sys_.mem();
                for (unsigned ch = 0; ch < mem.dramChannels(); ++ch) {
                    if (mem.dramController(ch).pending() > 0)
                        return false;
                }
                for (unsigned ch = 0; ch < mem.pimChannels(); ++ch) {
                    if (mem.pimController(ch).pending() > 0)
                        return false;
                }
                return true;
            };
            const Tick limit = sys_.eq().now() + Tick{100} * kPsPerMs;
            if (!sys_.runUntil(settled, limit)) {
                fail("liveness",
                     "contender traffic did not drain within 100 ms "
                     "simulated after the last wave");
            }
        }
    }

    void
    checkData()
    {
        for (const std::string &diff : golden_.compare(sys_))
            fail("data", diff);
    }

    void
    checkProtocol()
    {
        std::uint64_t commands = 0;
        for (std::size_t i = 0; i < checkers_.size(); ++i) {
            commands += checkers_[i]->commandsChecked();
            for (const std::string &v : checkers_[i]->violations())
                fail("protocol", checkerNames_[i] + ": " + v);
        }
        if (commands == 0 && plan_.totalBytes() > 0)
            fail("protocol", "no DRAM commands observed at all");
    }

    void
    expectEq(const char *property, const std::string &what,
             std::uint64_t actual, std::uint64_t expected)
    {
        if (actual != expected) {
            std::ostringstream os;
            os << what << ": " << actual << " != expected " << expected;
            fail(property, os.str());
        }
    }

    void
    checkConservation()
    {
        std::uint64_t totalBytes = 0, toPim = 0, fromPim = 0;
        std::uint64_t launches = 0;
        for (const TransferOp &op : plan_.ops) {
            if (op.launch) {
                ++launches;
                continue; // kernels generate no DRAM traffic
            }
            totalBytes += op.bytes();
            (op.dir == core::XferDirection::DramToPim ? toPim
                                                      : fromPim) +=
                op.bytes();
        }
        const std::uint64_t numOps = plan_.ops.size() - launches;

        // Launch-path conservation: every generated launch step runs
        // exactly one kernel launch, and nothing else does.
        expectEq("conservation", "pim.kernel_launches",
                 sys_.pim().stats().counterValue("kernel_launches"),
                 launches);

        if (cfg_.useDce()) {
            const stats::Group &dce = sys_.dce().stats();
            expectEq("conservation", "dce.transfers",
                     dce.counterValue("transfers"), numOps);
            expectEq("conservation", "dce.reads_issued",
                     dce.counterValue("reads_issued"), totalBytes / 64);
            expectEq("conservation", "dce.writes_issued",
                     dce.counterValue("writes_issued"),
                     totalBytes / 64);
            const stats::Histogram *xferHist =
                dce.findHistogram("transfer_us");
            expectEq("conservation", "dce.transfer_us histogram total",
                     xferHist ? xferHist->total() : 0, numOps);

            const stats::Group &mmu = sys_.pimMmu().stats();
            expectEq("conservation", "pim_mmu.transfers",
                     mmu.counterValue("transfers"), numOps);
            expectEq("conservation", "pim_mmu.bytes",
                     mmu.counterValue("bytes"), totalBytes);
        } else {
            const stats::Group &up = sys_.upmem().stats();
            expectEq("conservation", "upmem.push_xfers",
                     up.counterValue("push_xfers"), numOps);
            expectEq("conservation", "upmem.bytes",
                     up.counterValue("bytes"), totalBytes);
        }

        // Per-controller internal consistency: byte counts match the
        // request counters, and the per-request latency histogram
        // sampled exactly once per retired request.
        auto &mem = sys_.mem();
        std::uint64_t dramRead = 0, dramWritten = 0;
        std::uint64_t pimRead = 0, pimWritten = 0;
        auto checkController = [&](const dram::MemoryController &mc,
                                   const std::string &name) {
            const stats::Group &st = mc.stats();
            expectEq("conservation", name + " reads*64 vs bytesRead",
                     st.counterValue("reads") * 64, mc.bytesRead());
            expectEq("conservation",
                     name + " writes*64 vs bytesWritten",
                     st.counterValue("writes") * 64, mc.bytesWritten());
            const stats::Histogram *lat =
                st.findHistogram("queue_latency_ns");
            expectEq("conservation",
                     name + " queue_latency_ns histogram total",
                     lat ? lat->total() : 0,
                     st.counterValue("reads") +
                         st.counterValue("writes"));
        };
        for (unsigned ch = 0; ch < mem.dramChannels(); ++ch) {
            const auto &mc = mem.dramController(ch);
            checkController(mc, "dram.ch" + std::to_string(ch));
            dramRead += mc.bytesRead();
            dramWritten += mc.bytesWritten();
        }
        for (unsigned ch = 0; ch < mem.pimChannels(); ++ch) {
            const auto &mc = mem.pimController(ch);
            checkController(mc, "pim.ch" + std::to_string(ch));
            pimRead += mc.bytesRead();
            pimWritten += mc.bytesWritten();
        }

        // Cross-plane conservation. The PIM side is always exact: only
        // plan transfers touch it. The DRAM side is exact too, but on
        // cache-enabled runs the balance must include the LLC's own
        // traffic — every miss issues exactly one fill read and every
        // non-dropped dirty eviction one writeback write — so plan
        // bytes plus accounted cache bytes equal the bus counts.
        expectEq("conservation", "pim-side bytes written", pimWritten,
                 toPim);
        expectEq("conservation", "pim-side bytes read", pimRead,
                 fromPim);
        std::uint64_t fillBytes = 0, writebackBytes = 0;
        if (cfg_.useLlc) {
            const stats::Group &llc = sys_.llc()->stats();
            fillBytes = 64 * (llc.counterValue("read_misses") +
                              llc.counterValue("write_misses"));
            writebackBytes = 64 * llc.counterValue("writebacks");
        }
        expectEq("conservation",
                 "dram-side bytes read (plan + LLC fills)", dramRead,
                 toPim + fillBytes);
        expectEq("conservation",
                 "dram-side bytes written (plan + LLC writebacks)",
                 dramWritten, fromPim + writebackBytes);
        // Non-vacuity: a cache-enabled plan must actually produce LLC
        // fills -- unless it is launch-only, in which case no
        // simulated time elapses (launches run functionally at call
        // time) and the contenders never get to issue anything.
        if (plan_.memContenders > 0 && totalBytes > 0 &&
            fillBytes == 0) {
            fail("conservation",
                 "cache-enabled plan generated no LLC fills: the "
                 "contender traffic is not exercising the cache");
        }
    }

    const TransferPlan &plan_;
    sim::SystemConfig cfg_;
    sim::System sys_;
    std::vector<std::unique_ptr<dram::ProtocolChecker>> checkers_;
    std::vector<std::string> checkerNames_;
    GoldenModel golden_;
    std::vector<PreparedOp> prepared_;
    PropertyResult result_;
};

} // namespace

std::string
PropertyResult::str() const
{
    if (pass())
        return "PASS";
    std::ostringstream os;
    os << violations.size() << " violation(s):\n";
    for (const PropertyViolation &v : violations)
        os << "  [" << v.property << "] " << v.detail << "\n";
    return os.str();
}

PropertyResult
runPlan(const TransferPlan &plan)
{
    PlanRunner runner(plan);
    return runner.run();
}

} // namespace testing
} // namespace pimmmu

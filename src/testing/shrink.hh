/**
 * @file
 * Deterministic greedy shrinking of a failing TransferPlan: repeatedly
 * try simpler candidate plans (fewer ops, fewer banks, smaller sizes,
 * depth 1, no scatter, ...) and keep any candidate that still fails.
 * The result is a local minimum: removing any single op, bank, or knob
 * makes the failure disappear.
 */

#ifndef PIMMMU_TESTING_SHRINK_HH
#define PIMMMU_TESTING_SHRINK_HH

#include "testing/properties.hh"

namespace pimmmu {
namespace testing {

struct ShrinkResult
{
    TransferPlan plan;     //!< minimal still-failing plan
    PropertyResult result; //!< its violations
    unsigned evaluations = 0;
};

/**
 * Shrink @p plan, which must currently fail. Purely deterministic: the
 * same input plan always shrinks to the same reproducer.
 */
ShrinkResult shrinkPlan(const TransferPlan &plan,
                        unsigned maxEvaluations = 200);

} // namespace testing
} // namespace pimmmu

#endif // PIMMMU_TESTING_SHRINK_HH
